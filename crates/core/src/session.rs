//! Reusable extraction sessions: one configured extractor plus one owned
//! [`Workspace`], amortising allocations across runs — and a batch mode
//! that fans whole graphs out across the configured engine.
//!
//! # Single-graph traffic
//!
//! ```
//! use chordal_core::prelude::*;
//! use chordal_graph::builder::graph_from_edges;
//!
//! let graph = graph_from_edges(5, vec![(0, 1), (1, 2), (2, 3), (0, 3), (0, 2), (3, 4)]);
//! let mut session = ExtractionSession::new(ExtractorConfig::serial(AdjacencyMode::Sorted));
//!
//! let first = session.extract(&graph);
//! let allocations = session.workspace().allocations();
//!
//! // The second extraction reuses every buffer the first one grew.
//! let second = session.extract(&graph);
//! assert_eq!(first.edges(), second.edges());
//! assert_eq!(session.workspace().allocations(), allocations);
//! ```
//!
//! # Batch traffic
//!
//! [`ExtractionSession::extract_batch`] accepts a slice of graphs and
//! schedules them **hybridly** over the configured
//! [`chordal_runtime::Engine`], pivoting on
//! [`crate::config::ExtractorConfig::batch_threshold_edges`]:
//!
//! * graphs *below* the threshold are fanned out across the engine's
//!   workers, each extracted with the serial variant of the configured
//!   algorithm and a worker-local workspace (graph-level parallelism — the
//!   right trade for many small requests, where intra-graph regions would
//!   cost more than they win);
//! * graphs *at or above* the threshold run one at a time with the
//!   configured engine's intra-graph parallelism (the paper's Algorithm 1
//!   scaling regime, where per-iteration regions amortise).
//!
//! Setting the threshold to `usize::MAX` recovers pure fan-out, `0` pure
//! intra-graph scheduling. All parallel regions execute on the process-wide
//! persistent worker pool, so neither policy spawns threads per batch.
//!
//! # Adaptive scheduling: the measured cost model
//!
//! With [`ExtractorConfig::batch_adaptive`](crate::config::ExtractorConfig::batch_adaptive)
//! set, the pivot is not a configured constant but is derived from a cost
//! model: intra-graph parallelism saves roughly
//! `edges · ns_per_edge · (1 - 1/threads)` nanoseconds of wall time on a
//! graph, and costs about `regions_per_extraction · region_overhead_ns`.
//! Each graph is placed on whichever side wins for *it*, keyed by its
//! **canonical** edge count ([`GraphRef::num_canonical_edges`] — duplicate
//! edges and self loops on raw CSR input carry no extraction work, so they
//! must not push a graph across the pivot).
//!
//! The three model inputs are **measured**, not guessed:
//!
//! * `region_overhead_ns` is the pool's calibrated dispatch sample, keyed
//!   by the engine's thread count
//!   ([`chordal_runtime::estimated_region_overhead_ns_for`]) — a region
//!   with more participants publishes more tickets and pays more wake-ups,
//!   so a session must not reuse a sample calibrated for a different
//!   width.
//! * `ns_per_edge` and `regions_per_extraction` start at the seed
//!   constants ([`adaptive_batch_threshold_edges`] — so a fresh session's
//!   first batch pivots exactly like a feedback-free one) and then track
//!   the session's own traffic through an **EWMA**
//!   ([`SchedulerFeedback`], [`ExtractionSession::scheduler_feedback`]):
//!   fan-out runs contribute serial per-edge timings (stamped into
//!   [`ChordalResult::extract_ns`]), intra-graph runs contribute the
//!   regions they issued (delta of
//!   [`chordal_runtime::pool_regions_submitted_locally`] — thread-local,
//!   so concurrent sessions cannot cross-talk) and a serial-equivalent
//!   per-edge estimate (`elapsed · threads / edges` — an upper bound that
//!   assumes perfect scaling, deliberately erring toward the cheap
//!   failure mode; fan-out samples pull the average back down).
//!   [`ExtractionSession::effective_batch_threshold`]
//!   therefore *converges to the workload* instead of trusting
//!   compile-time constants. Disable with
//!   [`ExtractorConfig::batch_ewma`](crate::config::ExtractorConfig::batch_ewma).
//!
//! Seeding and fallback rules: a serial engine (`threads <= 1`) always
//! pivots at `usize::MAX` — it has nothing to win from intra-graph regions
//! — regardless of feedback; a session with no recorded samples uses the
//! seeded calibration model; graphs below a small floor contribute no
//! samples (their timings are noise).
//!
//! # Intra-batch rebalancing
//!
//! `extract_batch` does not commit placement up front. The fan-out set is
//! drained from a shared cursor by the submitting thread and the pool
//! workers together, and when the pool reports idle workers
//! ([`chordal_runtime::pool_idle_workers`]) while the remaining unclaimed
//! tail is too short to occupy them (`remaining ≤ min(idle, threads-1)`),
//! the submitting thread *promotes* that tail: the promoted graphs run
//! intra-graph after the fan-out region, where every idle worker can help,
//! instead of serially on one worker each while the rest of the pool sits
//! parked. Promotion only moves *where* a graph runs — the fan-out and
//! intra-graph paths are slot-identical for deterministic configurations,
//! so rebalancing can never change extraction output (locked down by
//! `tests/pool_scheduling.rs` across the pool-size matrix). Disable with
//! [`ExtractorConfig::batch_rebalance`](crate::config::ExtractorConfig::batch_rebalance);
//! promoted-graph totals are visible in [`SchedulerFeedback::rebalanced`].

use crate::config::ExtractorConfig;
use crate::extractor::{Algorithm, ChordalExtractor};
use crate::result::ChordalResult;
use crate::workspace::Workspace;
use chordal_graph::GraphRef;
use chordal_runtime::Engine;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Seed for the measured `ns_per_edge` feedback: approximate serial
/// extraction work per (undirected) edge for Algorithm 1 on cache-resident
/// R-MAT-like inputs. Only the order of magnitude matters — the EWMA
/// replaces it as soon as the session has seen real traffic, and the pivot
/// clamp absorbs the rest.
const ADAPTIVE_NS_PER_EDGE: u64 = 25;

/// Seed for the measured `regions_per_extraction` feedback: parallel
/// regions one intra-graph extraction typically issues (an init sweep, a
/// few iterations of queue processing plus next-queue collection, and the
/// final edge materialisation).
const ADAPTIVE_REGIONS_PER_EXTRACTION: u64 = 12;

/// Lower clamp of the adaptive pivot: below this, even a free region could
/// not amortise against cache and queue effects.
const ADAPTIVE_MIN_THRESHOLD_EDGES: usize = 1_024;

/// Upper clamp of the adaptive pivot: graphs this large always benefit
/// from intra-graph parallelism on any machine we target.
const ADAPTIVE_MAX_THRESHOLD_EDGES: usize = 1 << 20;

/// EWMA smoothing factor of the measured-cost feedback: each new sample
/// contributes a quarter, so a handful of batches converges the pivot
/// without letting one noisy timing yank it around.
const EWMA_ALPHA: f64 = 0.25;

/// Graphs below this canonical edge count contribute no feedback samples:
/// their extractions finish in microseconds and the per-edge quotient is
/// dominated by timer and scheduling noise.
const FEEDBACK_MIN_EDGES: usize = 256;

/// Clamp for one `ns_per_edge` feedback sample, so a degenerate timing
/// (preempted thread, page faults) cannot poison the EWMA.
const FEEDBACK_NS_PER_EDGE_RANGE: (f64, f64) = (0.05, 100_000.0);

/// Computes the *seeded* adaptive batch pivot for an engine with `threads`
/// workers: [`adaptive_batch_threshold_from_model`] evaluated at the seed
/// constants. This is what a session without recorded feedback (its first
/// batch) uses; with feedback, the session's EWMA replaces the constants.
///
/// A serial engine (`threads <= 1`) has no intra-graph parallelism to win
/// anything with — every region it would issue is pure scheduling overhead
/// — so the pivot is `usize::MAX`: every graph takes the fan-out
/// (sequential) path, no graph is ever placed intra-graph.
pub fn adaptive_batch_threshold_edges(threads: usize) -> usize {
    adaptive_batch_threshold_from_model(
        threads,
        ADAPTIVE_NS_PER_EDGE as f64,
        ADAPTIVE_REGIONS_PER_EXTRACTION as f64,
    )
}

/// Computes the adaptive batch pivot for an engine with `threads` workers
/// from explicit cost-model inputs: the canonical edge count above which a
/// graph's estimated parallel win (`edges · ns_per_edge · (1 - 1/threads)`)
/// exceeds the scheduling cost of the regions an intra-graph extraction
/// issues (`regions_per_extraction` · the pool's calibrated per-region
/// overhead for `threads`-participant regions). Clamped to a sane range so
/// a noisy calibration or feedback sample cannot produce a degenerate
/// policy; `usize::MAX` for serial engines (see
/// [`adaptive_batch_threshold_edges`]).
///
/// This is the function the session's measured-cost feedback loop
/// evaluates at its EWMA state; callers can use it to inspect what pivot a
/// hypothetical workload shape would produce.
pub fn adaptive_batch_threshold_from_model(
    threads: usize,
    ns_per_edge: f64,
    regions_per_extraction: f64,
) -> usize {
    if threads <= 1 {
        return usize::MAX;
    }
    let overhead_ns = chordal_runtime::estimated_region_overhead_ns_for(threads).max(1) as f64;
    let t = threads as f64;
    let win_per_edge_ns = (ns_per_edge * (1.0 - 1.0 / t)).max(1e-3);
    let region_cost_ns = overhead_ns * regions_per_extraction.max(1.0);
    let pivot = region_cost_ns / win_per_edge_ns;
    if !pivot.is_finite() {
        return ADAPTIVE_MAX_THRESHOLD_EDGES;
    }
    (pivot as usize).clamp(ADAPTIVE_MIN_THRESHOLD_EDGES, ADAPTIVE_MAX_THRESHOLD_EDGES)
}

/// Observable state of a session's measured-cost scheduling feedback.
///
/// `ewma_*` fields start at the seed constants and move toward the
/// session's own measurements batch by batch (`samples` counts recorded
/// measurements; while it is zero the seeded model is in effect and
/// [`ExtractionSession::effective_batch_threshold`] equals
/// [`adaptive_batch_threshold_edges`]). `rebalanced` counts fan-out graphs
/// the intra-batch rebalancer has promoted to intra-graph runs over the
/// session's lifetime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedulerFeedback {
    /// EWMA of measured serial-equivalent extraction cost per canonical
    /// edge, in nanoseconds.
    pub ewma_ns_per_edge: f64,
    /// EWMA of parallel regions issued per intra-graph extraction.
    pub ewma_regions_per_extraction: f64,
    /// Feedback samples recorded so far (0 = seeded model in effect).
    pub samples: u64,
    /// The most recent `ns_per_edge` sample (0 before the first sample);
    /// tests use it to bound how far the EWMA may sit from reality.
    pub last_ns_per_edge: f64,
    /// Fan-out graphs promoted to intra-graph runs by the rebalancer,
    /// cumulative over the session.
    pub rebalanced: u64,
}

impl SchedulerFeedback {
    /// The seeded state: EWMA fields at the calibration constants, no
    /// samples recorded.
    fn seeded() -> Self {
        Self {
            ewma_ns_per_edge: ADAPTIVE_NS_PER_EDGE as f64,
            ewma_regions_per_extraction: ADAPTIVE_REGIONS_PER_EXTRACTION as f64,
            samples: 0,
            last_ns_per_edge: 0.0,
            rebalanced: 0,
        }
    }
}

/// A configured extractor paired with a reusable [`Workspace`].
pub struct ExtractionSession {
    config: ExtractorConfig,
    extractor: Box<dyn ChordalExtractor>,
    workspace: Workspace,
    feedback: SchedulerFeedback,
}

impl ExtractionSession {
    /// Builds the session for `config`, constructing the configured
    /// algorithm through the [`Algorithm`] registry.
    pub fn new(config: ExtractorConfig) -> Self {
        let extractor = config.build_extractor();
        Self {
            config,
            extractor,
            workspace: Workspace::new(),
            feedback: SchedulerFeedback::seeded(),
        }
    }

    /// Convenience constructor: the given algorithm with default settings.
    pub fn with_algorithm(algorithm: Algorithm) -> Self {
        Self::new(ExtractorConfig::default().with_algorithm(algorithm))
    }

    /// The session's configuration.
    pub fn config(&self) -> &ExtractorConfig {
        &self.config
    }

    /// The algorithm this session runs.
    pub fn algorithm(&self) -> Algorithm {
        self.config.algorithm
    }

    /// The underlying extractor's registry name.
    pub fn extractor_name(&self) -> &'static str {
        self.extractor.name()
    }

    /// Read access to the owned workspace (its
    /// [`allocations`](Workspace::allocations) counter is how tests observe
    /// buffer reuse).
    pub fn workspace(&self) -> &Workspace {
        &self.workspace
    }

    /// Extracts from one graph — heap-resident or mmap-backed, anything
    /// viewable as a [`GraphRef`] — reusing the session workspace. The
    /// result carries the measured wall-clock of the run
    /// ([`ChordalResult::extract_ns`]).
    pub fn extract<'a>(&mut self, graph: impl Into<GraphRef<'a>>) -> ChordalResult {
        let start = Instant::now();
        let mut result = self
            .extractor
            .extract_into(graph.into(), &mut self.workspace);
        result.set_extract_ns(start.elapsed().as_nanos() as u64);
        result
    }

    /// The session's measured-cost scheduling feedback: EWMA state, sample
    /// count and the rebalancer's promotion total.
    pub fn scheduler_feedback(&self) -> SchedulerFeedback {
        self.feedback
    }

    /// Folds one `ns_per_edge` sample (serial-equivalent nanoseconds per
    /// canonical edge) and, for intra-graph runs, a regions-per-extraction
    /// sample into the EWMA state. Tiny graphs are rejected — their
    /// quotients are timer noise. No-op when
    /// [`batch_ewma`](crate::config::ExtractorConfig::batch_ewma) is off,
    /// so a feedback-disabled session's state stays frozen at the seed.
    fn record_sample(&mut self, edges: usize, serial_equivalent_ns: f64, regions: Option<u64>) {
        if !self.config.batch_ewma || edges < FEEDBACK_MIN_EDGES || serial_equivalent_ns <= 0.0 {
            return;
        }
        let (lo, hi) = FEEDBACK_NS_PER_EDGE_RANGE;
        let ns_per_edge = (serial_equivalent_ns / edges as f64).clamp(lo, hi);
        self.feedback.ewma_ns_per_edge =
            EWMA_ALPHA * ns_per_edge + (1.0 - EWMA_ALPHA) * self.feedback.ewma_ns_per_edge;
        self.feedback.last_ns_per_edge = ns_per_edge;
        if let Some(regions) = regions {
            // An intra-graph run that split into no regions still counts as
            // one scheduling decision.
            let regions = regions.clamp(1, 10_000) as f64;
            self.feedback.ewma_regions_per_extraction = EWMA_ALPHA * regions
                + (1.0 - EWMA_ALPHA) * self.feedback.ewma_regions_per_extraction;
        }
        self.feedback.samples += 1;
    }

    /// The batch pivot [`ExtractionSession::extract_batch`] will use:
    /// the static
    /// [`batch_threshold_edges`](crate::config::ExtractorConfig::batch_threshold_edges),
    /// or — when
    /// [`batch_adaptive`](crate::config::ExtractorConfig::batch_adaptive)
    /// is set — the measured cost model evaluated at the session's EWMA
    /// state ([`adaptive_batch_threshold_from_model`]). Before the first
    /// feedback sample (and whenever
    /// [`batch_ewma`](crate::config::ExtractorConfig::batch_ewma) is off)
    /// that is exactly the seeded estimate of
    /// [`adaptive_batch_threshold_edges`]; serial engines always pivot at
    /// `usize::MAX`.
    pub fn effective_batch_threshold(&self) -> usize {
        if self.config.batch_adaptive {
            let threads = self.config.engine.threads();
            if self.config.batch_ewma && self.feedback.samples > 0 {
                adaptive_batch_threshold_from_model(
                    threads,
                    self.feedback.ewma_ns_per_edge,
                    self.feedback.ewma_regions_per_extraction,
                )
            } else {
                adaptive_batch_threshold_edges(threads)
            }
        } else {
            self.config.batch_threshold_edges
        }
    }

    /// Extracts from every graph of a batch, in input order, under the
    /// hybrid scheduling policy.
    ///
    /// With a serial engine the graphs run back to back through the session
    /// workspace. With a parallel engine the batch is split by
    /// [`ExtractorConfig::batch_threshold_edges`](crate::config::ExtractorConfig::batch_threshold_edges):
    ///
    /// * graphs below the threshold are fanned out across the engine's
    ///   workers, each worker running the serial variant of the configured
    ///   algorithm with a worker-local workspace that is reused across the
    ///   graphs it processes (so a batch of same-shaped graphs pays one
    ///   allocation per worker, not one per graph);
    /// * graphs at or above the threshold run one at a time through
    ///   [`ExtractionSession::extract`] — the configured engine's
    ///   intra-graph parallelism and the session workspace.
    ///
    /// With
    /// [`ExtractorConfig::batch_adaptive`](crate::config::ExtractorConfig::batch_adaptive)
    /// the pivot is the measured cost model at the session's EWMA state
    /// instead of the static configuration value, and with
    /// [`ExtractorConfig::batch_rebalance`](crate::config::ExtractorConfig::batch_rebalance)
    /// the fan-out tail may be promoted to intra-graph runs when pool
    /// workers idle (see the module docs). Placement keys on each graph's
    /// *canonical* edge count ([`GraphRef::num_canonical_edges`]).
    ///
    /// Results are slot-identical to single-graph runs for every
    /// deterministic configuration, whichever side of the threshold a graph
    /// lands on and whether or not it was promoted. The batch may mix
    /// storage representations — anything convertible to [`GraphRef`]
    /// (`&CsrGraph`, `&MmapCsrGraph`, or `GraphRef` itself) schedules the
    /// same way.
    pub fn extract_batch<'a, G>(&mut self, graphs: &[G]) -> Vec<ChordalResult>
    where
        G: Into<GraphRef<'a>> + Copy,
    {
        let views: Vec<GraphRef<'a>> = graphs.iter().map(|&g| g.into()).collect();
        if views.is_empty() {
            return Vec::new();
        }
        if self.config.engine.threads() <= 1 || views.len() == 1 {
            return views.iter().map(|&g| self.extract(g)).collect();
        }
        let threads = self.config.engine.threads();
        let threshold = self.effective_batch_threshold();
        // Placement keys on the *canonical* edge count: duplicate edges and
        // self loops on raw CSR input carry no extraction work, so they
        // must not push a graph across the pivot.
        let edge_counts: Vec<usize> = views.iter().map(|g| g.num_canonical_edges()).collect();
        let small: Vec<usize> = (0..views.len())
            .filter(|&i| edge_counts[i] < threshold)
            .collect();
        let slots: Vec<OnceLock<ChordalResult>> =
            (0..views.len()).map(|_| OnceLock::new()).collect();
        // One ownership flag per fan-out item: set by whoever extracts it
        // (fan-out claimant or, for promoted tail items, the intra-graph
        // sweep below), so a promotion racing a concurrent claim can never
        // run a graph twice or drop it.
        let taken: Vec<AtomicBool> = small.iter().map(|_| AtomicBool::new(false)).collect();
        if !small.is_empty() {
            // The fan-out set is drained from this shared cursor; `mark` is
            // the promotion fence — claims at or beyond it belong to the
            // intra-graph sweep.
            let cursor = AtomicUsize::new(0);
            let mark = AtomicUsize::new(small.len());
            let rebalance = self.config.batch_rebalance;
            let submitter = std::thread::current().id();
            // Idle capacity an intra-graph region could actually recruit: a
            // region takes at most `threads - 1` helpers however many pool
            // workers are parked.
            let helper_cap = threads.saturating_sub(1);
            // Grain 1: each small graph is one schedulable unit of the
            // fan-out.
            let engine = self.config.engine.with_grain(1);
            // Worker-local extraction must not nest engine parallelism
            // inside engine parallelism, so the per-graph runs use the
            // serial engine. Pin the partition count first: "one partition
            // per engine worker" must resolve against the *configured*
            // engine, not the serial one.
            let mut serial_config = self.config.clone();
            serial_config.partitions = serial_config.effective_partitions();
            let serial_config = serial_config.with_engine(Engine::serial());
            let extractor = serial_config.build_extractor();
            thread_local! {
                /// Worker-local workspace: persists across the graphs one
                /// worker processes (and, because the workers are the
                /// persistent pool's, across batches).
                static BATCH_WORKSPACE: std::cell::RefCell<Workspace> =
                    std::cell::RefCell::new(Workspace::new());
            }
            engine.parallel_for_chunks(small.len(), |_assignment| {
                BATCH_WORKSPACE.with(|workspace| {
                    let mut workspace = workspace.borrow_mut();
                    loop {
                        // Rebalancing check, submitter only: when the
                        // unclaimed tail is too short to occupy the parked
                        // workers an intra-graph region could recruit,
                        // promote it wholesale instead of running it one
                        // worker at a time. Requires claim progress
                        // (`next > 0`): at region start every worker still
                        // looks parked because the region's own tickets
                        // have not woken them yet — promoting then would
                        // disable the fan-out outright, the opposite of
                        // what the idle hint means. After that first
                        // claim the hint is trustworthy: the push path
                        // clears a worker's sleeping flag at *publish*
                        // time (not at wake-up), so workers this region
                        // invited are never counted idle, only genuinely
                        // uninvited capacity is.
                        if rebalance && std::thread::current().id() == submitter {
                            let next = cursor.load(Ordering::SeqCst);
                            let fence = mark.load(Ordering::SeqCst);
                            if next > 0 && next < fence {
                                let remaining = fence - next;
                                let idle = chordal_runtime::pool_idle_workers().min(helper_cap);
                                if remaining <= idle {
                                    mark.fetch_min(next, Ordering::SeqCst);
                                    break;
                                }
                            }
                        }
                        let si = cursor.fetch_add(1, Ordering::SeqCst);
                        if si >= mark.load(Ordering::SeqCst) {
                            break;
                        }
                        // The cursor hands out unique indices, so the swap
                        // only guards against a promotion that raced this
                        // claim past the fence.
                        if taken[si].swap(true, Ordering::SeqCst) {
                            continue;
                        }
                        let i = small[si];
                        let start = Instant::now();
                        let mut result = extractor.extract_into(views[i], &mut workspace);
                        result.set_extract_ns(start.elapsed().as_nanos() as u64);
                        slots[i]
                            .set(result)
                            .expect("each batch slot is written exactly once");
                    }
                });
            });
        }
        // Intra-graph sweep, in input order: the graphs at or above the
        // pivot plus any fan-out tail the rebalancer promoted.
        let mut small_pos = vec![usize::MAX; views.len()];
        for (si, &i) in small.iter().enumerate() {
            small_pos[i] = si;
        }
        let mut ran_intra = vec![false; views.len()];
        for (i, &graph) in views.iter().enumerate() {
            let promoted =
                small_pos[i] != usize::MAX && !taken[small_pos[i]].swap(true, Ordering::SeqCst);
            if small_pos[i] == usize::MAX || promoted {
                if promoted {
                    self.feedback.rebalanced += 1;
                }
                // Thread-local delta: a global pool_stats() delta would
                // absorb regions concurrent sessions submitted in the same
                // window and misattribute them to this graph.
                let regions_before = chordal_runtime::pool_regions_submitted_locally();
                let result = self.extract(graph);
                let regions = chordal_runtime::pool_regions_submitted_locally() - regions_before;
                // Serial-equivalent cost estimate of a parallel run:
                // elapsed · achievable parallelism assumes perfect scaling
                // — a deliberate upper bound. Overestimating serial cost
                // can only lower the pivot (more intra placement, bounded
                // by the clamp floor and a few regions of overhead per
                // small graph); underestimating it would fan large graphs
                // out serially, the expensive direction. Fan-out samples,
                // when the batch has them, pull the average toward
                // measured serial cost; a workload whose every graph runs
                // intra has no such corrective stream and its pivot can
                // ratchet toward the clamp floor — an accepted bias,
                // because the floor bounds the damage while the opposite
                // error grows with graph size. Achievable parallelism is
                // the engine's thread count capped by the pool's real
                // capacity (workers + the submitting thread): an
                // oversubscribed engine on a small pool gets no
                // parallelism the cap doesn't deliver, and scaling by the
                // nominal count would pin the pivot at the clamp floor.
                let achievable = threads.min(chordal_runtime::pool_size() + 1);
                self.record_sample(
                    edge_counts[i],
                    result.extract_ns() as f64 * achievable as f64,
                    Some(regions),
                );
                ran_intra[i] = true;
                slots[i]
                    .set(result)
                    .expect("each batch slot is written exactly once");
            }
        }
        // Fold the fan-out timings (serial per-edge samples) into the
        // feedback, in input order.
        for &i in &small {
            if !ran_intra[i] {
                if let Some(result) = slots[i].get() {
                    self.record_sample(edge_counts[i], result.extract_ns() as f64, None);
                }
            }
        }
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("every batch slot was filled by a worker")
            })
            .collect()
    }
}

impl std::fmt::Debug for ExtractionSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExtractionSession")
            .field("algorithm", &self.config.algorithm)
            .field("engine", &self.config.engine)
            .field("workspace_allocations", &self.workspace.allocations())
            .field("feedback", &self.feedback)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AdjacencyMode, Semantics};
    use chordal_generators::{rmat::RmatKind, rmat::RmatParams, structured};
    use chordal_graph::CsrGraph;

    #[test]
    fn session_reuse_keeps_results_identical_and_allocations_flat() {
        let g = RmatParams::preset(RmatKind::G, 8, 1).generate();
        let mut session = ExtractionSession::new(ExtractorConfig::serial(AdjacencyMode::Sorted));
        let first = session.extract(&g);
        let allocations = session.workspace().allocations();
        for _ in 0..3 {
            let again = session.extract(&g);
            assert_eq!(again.edges(), first.edges());
        }
        assert_eq!(session.workspace().allocations(), allocations);
    }

    #[test]
    fn session_dispatches_every_algorithm() {
        let g = structured::grid(5, 5);
        for algorithm in Algorithm::ALL {
            let mut session = ExtractionSession::new(
                ExtractorConfig::serial(AdjacencyMode::Sorted).with_algorithm(algorithm),
            );
            assert_eq!(session.algorithm(), algorithm);
            assert_eq!(session.extractor_name(), algorithm.name());
            let result = session.extract(&g);
            assert!(result.num_chordal_edges() > 0, "{algorithm}");
        }
    }

    #[test]
    fn batch_results_match_single_runs_in_order() {
        let graphs: Vec<CsrGraph> = (0..6)
            .map(|seed| RmatParams::preset(RmatKind::Er, 7, seed).generate())
            .collect();
        let refs: Vec<&CsrGraph> = graphs.iter().collect();
        // Synchronous semantics: deterministic, so serial and fanned-out
        // batches must agree exactly.
        let config = ExtractorConfig::default()
            .with_engine(chordal_runtime::Engine::rayon(3))
            .with_semantics(Semantics::Synchronous);
        let mut parallel_session = ExtractionSession::new(config.clone());
        let batch = parallel_session.extract_batch(&refs);
        assert_eq!(batch.len(), graphs.len());
        let mut serial_session =
            ExtractionSession::new(config.with_engine(chordal_runtime::Engine::serial()));
        for (graph, from_batch) in graphs.iter().zip(&batch) {
            let single = serial_session.extract(graph);
            assert_eq!(single.edges(), from_batch.edges());
        }
    }

    #[test]
    fn batch_on_serial_engine_reuses_the_session_workspace() {
        let graphs: Vec<CsrGraph> = (0..4).map(|_| structured::grid(6, 6)).collect();
        let refs: Vec<&CsrGraph> = graphs.iter().collect();
        let mut session = ExtractionSession::new(ExtractorConfig::serial(AdjacencyMode::Sorted));
        let first = session.extract_batch(&refs);
        let allocations = session.workspace().allocations();
        let second = session.extract_batch(&refs);
        assert_eq!(session.workspace().allocations(), allocations);
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.edges(), b.edges());
        }
    }

    #[test]
    fn empty_batch_is_empty() {
        let mut session = ExtractionSession::with_algorithm(Algorithm::Dearing);
        assert!(session.extract_batch::<&CsrGraph>(&[]).is_empty());
    }

    #[test]
    fn hybrid_policy_matches_single_runs_on_both_sides_of_the_threshold() {
        // A mixed batch: scale-9 graphs are "large", scale-6 ones "small"
        // relative to the 2_000-edge pivot, so both scheduling paths run.
        let graphs: Vec<CsrGraph> = (0..3)
            .flat_map(|seed| {
                [
                    RmatParams::preset(RmatKind::Er, 9, seed).generate(),
                    RmatParams::preset(RmatKind::G, 6, seed).generate(),
                ]
            })
            .collect();
        let refs: Vec<&CsrGraph> = graphs.iter().collect();
        let config = ExtractorConfig::default()
            .with_engine(chordal_runtime::Engine::rayon(3))
            .with_semantics(Semantics::Synchronous)
            .with_batch_threshold_edges(2_000);
        assert!(graphs.iter().any(|g| g.num_edges() >= 2_000));
        assert!(graphs.iter().any(|g| g.num_edges() < 2_000));
        let batch = ExtractionSession::new(config.clone()).extract_batch(&refs);
        let mut single =
            ExtractionSession::new(config.with_engine(chordal_runtime::Engine::serial()));
        for (graph, from_batch) in graphs.iter().zip(&batch) {
            assert_eq!(single.extract(graph).edges(), from_batch.edges());
        }
    }

    #[test]
    fn threshold_extremes_recover_the_pure_policies() {
        let graphs: Vec<CsrGraph> = (0..4)
            .map(|seed| RmatParams::preset(RmatKind::Er, 7, seed).generate())
            .collect();
        let refs: Vec<&CsrGraph> = graphs.iter().collect();
        // Rebalancing off: "pure" policies must not take the promotion
        // path, or they would not be the pure placements they claim.
        let base = ExtractorConfig::default()
            .with_engine(chordal_runtime::Engine::chunked(3))
            .with_semantics(Semantics::Synchronous)
            .with_batch_rebalance(false);
        // Pure fan-out and pure intra-graph scheduling agree slot for slot
        // (synchronous semantics are schedule-independent).
        let fanned = ExtractionSession::new(base.clone().with_batch_threshold_edges(usize::MAX))
            .extract_batch(&refs);
        let intra = ExtractionSession::new(base.with_batch_threshold_edges(0)).extract_batch(&refs);
        for (a, b) in fanned.iter().zip(&intra) {
            assert_eq!(a.edges(), b.edges());
        }
    }

    #[test]
    fn intra_graph_path_reuses_the_session_workspace() {
        // threshold 0: every graph takes the intra-graph path, which runs
        // through the session workspace — so a second identical batch must
        // not allocate.
        let graphs: Vec<CsrGraph> = (0..3).map(|_| structured::grid(8, 8)).collect();
        let refs: Vec<&CsrGraph> = graphs.iter().collect();
        let mut session = ExtractionSession::new(
            ExtractorConfig::default()
                .with_engine(chordal_runtime::Engine::rayon(2))
                .with_batch_threshold_edges(0),
        );
        let first = session.extract_batch(&refs);
        let allocations = session.workspace().allocations();
        let second = session.extract_batch(&refs);
        assert_eq!(session.workspace().allocations(), allocations);
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.num_vertices(), b.num_vertices());
        }
    }

    #[test]
    fn adaptive_threshold_is_clamped_and_stable() {
        for threads in [2, 4, 16] {
            let t = adaptive_batch_threshold_edges(threads);
            assert!(
                (ADAPTIVE_MIN_THRESHOLD_EDGES..=ADAPTIVE_MAX_THRESHOLD_EDGES).contains(&t),
                "threads {threads}: pivot {t} out of clamp range"
            );
            // The overhead sample is memoised per thread count, so each
            // pivot is stable within a process. (It is *not* monotone in
            // `threads` any more: wider regions pay measured wake-up costs
            // of their own — that is the stale-calibration fix.)
            assert_eq!(t, adaptive_batch_threshold_edges(threads));
        }
    }

    #[test]
    fn model_pivot_tracks_its_inputs() {
        // More expensive edges push the pivot down (intra-graph pays off
        // sooner); more regions per extraction push it up.
        let cheap = adaptive_batch_threshold_from_model(4, 5.0, 12.0);
        let costly = adaptive_batch_threshold_from_model(4, 500.0, 12.0);
        assert!(costly <= cheap, "{costly} vs {cheap}");
        let lean = adaptive_batch_threshold_from_model(4, 25.0, 2.0);
        let heavy = adaptive_batch_threshold_from_model(4, 25.0, 200.0);
        assert!(lean <= heavy, "{lean} vs {heavy}");
        // Serial engines never place intra-graph, whatever the feedback.
        assert_eq!(adaptive_batch_threshold_from_model(1, 1.0, 1.0), usize::MAX);
        // The seeded convenience form is the model at the seed constants.
        assert_eq!(
            adaptive_batch_threshold_edges(3),
            adaptive_batch_threshold_from_model(
                3,
                ADAPTIVE_NS_PER_EDGE as f64,
                ADAPTIVE_REGIONS_PER_EXTRACTION as f64
            )
        );
    }

    #[test]
    fn feedback_starts_seeded_and_records_batch_samples() {
        let graphs: Vec<CsrGraph> = (0..4)
            .map(|seed| RmatParams::preset(RmatKind::Er, 9, seed).generate())
            .collect();
        let refs: Vec<&CsrGraph> = graphs.iter().collect();
        let mut session = ExtractionSession::new(
            ExtractorConfig::default()
                .with_engine(chordal_runtime::Engine::rayon(3))
                .with_batch_adaptive(true),
        );
        let seeded = session.scheduler_feedback();
        assert_eq!(seeded.samples, 0);
        assert_eq!(seeded.ewma_ns_per_edge, ADAPTIVE_NS_PER_EDGE as f64);
        assert_eq!(
            seeded.ewma_regions_per_extraction,
            ADAPTIVE_REGIONS_PER_EXTRACTION as f64
        );
        assert_eq!(
            session.effective_batch_threshold(),
            adaptive_batch_threshold_edges(3),
            "a fresh session pivots exactly like the seeded model"
        );
        session.extract_batch(&refs);
        let fed = session.scheduler_feedback();
        assert!(
            fed.samples > 0,
            "scale-9 graphs are above the feedback floor and must record"
        );
        assert!(fed.ewma_ns_per_edge > 0.0 && fed.ewma_ns_per_edge.is_finite());
        assert!(fed.last_ns_per_edge > 0.0);
        // The reported pivot is the model evaluated at the EWMA state.
        assert_eq!(
            session.effective_batch_threshold(),
            adaptive_batch_threshold_from_model(
                3,
                fed.ewma_ns_per_edge,
                fed.ewma_regions_per_extraction
            )
        );
    }

    #[test]
    fn ewma_off_pins_the_pivot_to_the_seeded_model() {
        let graphs: Vec<CsrGraph> = (0..3)
            .map(|seed| RmatParams::preset(RmatKind::Er, 9, seed).generate())
            .collect();
        let refs: Vec<&CsrGraph> = graphs.iter().collect();
        let mut session = ExtractionSession::new(
            ExtractorConfig::default()
                .with_engine(chordal_runtime::Engine::rayon(3))
                .with_batch_adaptive(true)
                .with_batch_ewma(false),
        );
        let pivot = session.effective_batch_threshold();
        session.extract_batch(&refs);
        session.extract_batch(&refs);
        assert_eq!(
            session.effective_batch_threshold(),
            pivot,
            "with feedback disabled the pivot must not move"
        );
    }

    #[test]
    fn rebalance_off_never_promotes() {
        let graphs: Vec<CsrGraph> = (0..6)
            .map(|seed| RmatParams::preset(RmatKind::G, 6, seed).generate())
            .collect();
        let refs: Vec<&CsrGraph> = graphs.iter().collect();
        let mut session = ExtractionSession::new(
            ExtractorConfig::default()
                .with_engine(chordal_runtime::Engine::rayon(3))
                .with_batch_threshold_edges(usize::MAX)
                .with_batch_rebalance(false),
        );
        for _ in 0..3 {
            session.extract_batch(&refs);
        }
        assert_eq!(session.scheduler_feedback().rebalanced, 0);
    }

    #[test]
    fn adaptive_threshold_never_places_intra_graph_on_serial_engines() {
        // A 1-thread engine cannot win anything from intra-graph
        // parallelism: the pivot must be "never", not a finite value that
        // would buy pure region overhead.
        assert_eq!(adaptive_batch_threshold_edges(0), usize::MAX);
        assert_eq!(adaptive_batch_threshold_edges(1), usize::MAX);
        let serial_session = ExtractionSession::new(
            ExtractorConfig::default()
                .with_engine(chordal_runtime::Engine::serial())
                .with_batch_adaptive(true),
        );
        assert_eq!(serial_session.effective_batch_threshold(), usize::MAX);
    }

    #[test]
    fn adaptive_sessions_report_the_calibrated_pivot() {
        let session = ExtractionSession::new(
            ExtractorConfig::default()
                .with_engine(chordal_runtime::Engine::rayon(3))
                .with_batch_threshold_edges(777)
                .with_batch_adaptive(true),
        );
        assert_eq!(
            session.effective_batch_threshold(),
            adaptive_batch_threshold_edges(3),
            "adaptive sessions must ignore the static pivot"
        );
        let static_session = ExtractionSession::new(
            ExtractorConfig::default()
                .with_engine(chordal_runtime::Engine::rayon(3))
                .with_batch_threshold_edges(777),
        );
        assert_eq!(static_session.effective_batch_threshold(), 777);
    }

    #[test]
    fn adaptive_batches_match_the_static_policy_exactly() {
        // Deterministic configs: placement must never change output, so the
        // adaptive policy agrees slot for slot with every static pivot.
        let graphs: Vec<CsrGraph> = (0..3)
            .flat_map(|seed| {
                [
                    RmatParams::preset(RmatKind::Er, 9, seed).generate(),
                    RmatParams::preset(RmatKind::G, 6, seed).generate(),
                ]
            })
            .collect();
        let refs: Vec<&CsrGraph> = graphs.iter().collect();
        let base = ExtractorConfig::default()
            .with_engine(chordal_runtime::Engine::rayon(3))
            .with_semantics(Semantics::Synchronous);
        let adaptive =
            ExtractionSession::new(base.clone().with_batch_adaptive(true)).extract_batch(&refs);
        for pivot in [0, 2_000, usize::MAX] {
            // Promotion-free static references.
            let static_batch = ExtractionSession::new(
                base.clone()
                    .with_batch_threshold_edges(pivot)
                    .with_batch_rebalance(false),
            )
            .extract_batch(&refs);
            for (i, (a, b)) in adaptive.iter().zip(&static_batch).enumerate() {
                assert_eq!(a.edges(), b.edges(), "pivot {pivot} slot {i}");
            }
        }
    }

    #[test]
    fn batch_works_for_serial_algorithms_on_parallel_engines() {
        let graphs: Vec<CsrGraph> = (0..5)
            .map(|seed| RmatParams::preset(RmatKind::B, 6, seed).generate())
            .collect();
        let refs: Vec<&CsrGraph> = graphs.iter().collect();
        let mut session = ExtractionSession::new(
            ExtractorConfig::default()
                .with_algorithm(Algorithm::Dearing)
                .with_engine(chordal_runtime::Engine::chunked(4)),
        );
        let batch = session.extract_batch(&refs);
        for (graph, result) in graphs.iter().zip(&batch) {
            assert_eq!(
                result.edges(),
                crate::dearing::extract_dearing(graph).edges()
            );
        }
    }
}
