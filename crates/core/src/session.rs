//! Reusable extraction sessions: one configured extractor plus one owned
//! [`Workspace`], amortising allocations across runs — and a batch mode
//! that fans whole graphs out across the configured engine.
//!
//! # Single-graph traffic
//!
//! ```
//! use chordal_core::prelude::*;
//! use chordal_graph::builder::graph_from_edges;
//!
//! let graph = graph_from_edges(5, vec![(0, 1), (1, 2), (2, 3), (0, 3), (0, 2), (3, 4)]);
//! let mut session = ExtractionSession::new(ExtractorConfig::serial(AdjacencyMode::Sorted));
//!
//! let first = session.extract(&graph);
//! let allocations = session.workspace().allocations();
//!
//! // The second extraction reuses every buffer the first one grew.
//! let second = session.extract(&graph);
//! assert_eq!(first.edges(), second.edges());
//! assert_eq!(session.workspace().allocations(), allocations);
//! ```
//!
//! # Batch traffic
//!
//! [`ExtractionSession::extract_batch`] accepts a slice of graphs and
//! schedules them **hybridly** over the configured
//! [`chordal_runtime::Engine`], pivoting on
//! [`crate::config::ExtractorConfig::batch_threshold_edges`]:
//!
//! * graphs *below* the threshold are fanned out across the engine's
//!   workers, each extracted with the serial variant of the configured
//!   algorithm and a worker-local workspace (graph-level parallelism — the
//!   right trade for many small requests, where intra-graph regions would
//!   cost more than they win);
//! * graphs *at or above* the threshold run one at a time with the
//!   configured engine's intra-graph parallelism (the paper's Algorithm 1
//!   scaling regime, where per-iteration regions amortise).
//!
//! Setting the threshold to `usize::MAX` recovers pure fan-out, `0` pure
//! intra-graph scheduling. All parallel regions execute on the process-wide
//! persistent worker pool, so neither policy spawns threads per batch.
//!
//! # Adaptive scheduling
//!
//! With [`ExtractorConfig::batch_adaptive`](crate::config::ExtractorConfig::batch_adaptive)
//! set, the pivot is not a configured constant but is derived per machine
//! from a cost model ([`adaptive_batch_threshold_edges`]): intra-graph
//! parallelism saves roughly `edges · ns_per_edge · (1 - 1/threads)`
//! nanoseconds of wall time on a graph, and costs about
//! `regions_per_extraction · region_overhead_ns`, where the per-region
//! dispatch overhead is the pool's calibrated sample
//! ([`chordal_runtime::estimated_region_overhead_ns`]). Each graph is
//! placed on whichever side wins for *it*. Because the fan-out and
//! intra-graph paths are slot-identical for deterministic configurations,
//! the adaptive policy can never change extraction output — only where
//! each graph runs.

use crate::config::ExtractorConfig;
use crate::extractor::{Algorithm, ChordalExtractor};
use crate::result::ChordalResult;
use crate::workspace::Workspace;
use chordal_graph::CsrGraph;
use chordal_runtime::Engine;
use std::sync::OnceLock;

/// Approximate serial extraction work per (undirected) edge, in
/// nanoseconds. A mid-range figure for Algorithm 1 on cache-resident
/// R-MAT-like inputs; the adaptive policy only needs the right order of
/// magnitude, since the clamp below absorbs the rest.
const ADAPTIVE_NS_PER_EDGE: u64 = 25;

/// Parallel regions one intra-graph extraction typically issues: an init
/// sweep, a few iterations of queue processing plus next-queue collection,
/// and the final edge materialisation.
const ADAPTIVE_REGIONS_PER_EXTRACTION: u64 = 12;

/// Lower clamp of the adaptive pivot: below this, even a free region could
/// not amortise against cache and queue effects.
const ADAPTIVE_MIN_THRESHOLD_EDGES: usize = 1_024;

/// Upper clamp of the adaptive pivot: graphs this large always benefit
/// from intra-graph parallelism on any machine we target.
const ADAPTIVE_MAX_THRESHOLD_EDGES: usize = 1 << 20;

/// Computes the adaptive batch pivot for an engine with `threads` workers:
/// the edge count above which a graph's estimated parallel win
/// (`edges · ns_per_edge · (1 - 1/threads)`) exceeds the scheduling cost
/// of the regions an intra-graph extraction issues, using the pool's
/// calibrated per-region overhead sample. Deterministic per process (the
/// overhead sample is memoised), monotonically decreasing in `threads`
/// for parallel engines, and clamped to a sane range so a noisy
/// calibration cannot produce a degenerate policy.
///
/// A serial engine (`threads <= 1`) has no intra-graph parallelism to win
/// anything with — every region it would issue is pure scheduling overhead
/// — so the pivot is `usize::MAX`: every graph takes the fan-out
/// (sequential) path, no graph is ever placed intra-graph.
pub fn adaptive_batch_threshold_edges(threads: usize) -> usize {
    if threads <= 1 {
        return usize::MAX;
    }
    let overhead_ns = chordal_runtime::estimated_region_overhead_ns().max(1);
    let t = threads as u64;
    let win_per_edge_ns = (ADAPTIVE_NS_PER_EDGE * (t - 1) / t).max(1);
    let region_cost_ns = overhead_ns.saturating_mul(ADAPTIVE_REGIONS_PER_EXTRACTION);
    ((region_cost_ns / win_per_edge_ns) as usize)
        .clamp(ADAPTIVE_MIN_THRESHOLD_EDGES, ADAPTIVE_MAX_THRESHOLD_EDGES)
}

/// A configured extractor paired with a reusable [`Workspace`].
pub struct ExtractionSession {
    config: ExtractorConfig,
    extractor: Box<dyn ChordalExtractor>,
    workspace: Workspace,
}

impl ExtractionSession {
    /// Builds the session for `config`, constructing the configured
    /// algorithm through the [`Algorithm`] registry.
    pub fn new(config: ExtractorConfig) -> Self {
        let extractor = config.build_extractor();
        Self {
            config,
            extractor,
            workspace: Workspace::new(),
        }
    }

    /// Convenience constructor: the given algorithm with default settings.
    pub fn with_algorithm(algorithm: Algorithm) -> Self {
        Self::new(ExtractorConfig::default().with_algorithm(algorithm))
    }

    /// The session's configuration.
    pub fn config(&self) -> &ExtractorConfig {
        &self.config
    }

    /// The algorithm this session runs.
    pub fn algorithm(&self) -> Algorithm {
        self.config.algorithm
    }

    /// The underlying extractor's registry name.
    pub fn extractor_name(&self) -> &'static str {
        self.extractor.name()
    }

    /// Read access to the owned workspace (its
    /// [`allocations`](Workspace::allocations) counter is how tests observe
    /// buffer reuse).
    pub fn workspace(&self) -> &Workspace {
        &self.workspace
    }

    /// Extracts from one graph, reusing the session workspace.
    pub fn extract(&mut self, graph: &CsrGraph) -> ChordalResult {
        self.extractor.extract_into(graph, &mut self.workspace)
    }

    /// The batch pivot [`ExtractionSession::extract_batch`] will use:
    /// the static
    /// [`batch_threshold_edges`](crate::config::ExtractorConfig::batch_threshold_edges),
    /// or — when
    /// [`batch_adaptive`](crate::config::ExtractorConfig::batch_adaptive)
    /// is set — the machine-calibrated estimate of
    /// [`adaptive_batch_threshold_edges`].
    pub fn effective_batch_threshold(&self) -> usize {
        if self.config.batch_adaptive {
            adaptive_batch_threshold_edges(self.config.engine.threads())
        } else {
            self.config.batch_threshold_edges
        }
    }

    /// Extracts from every graph of a batch, in input order, under the
    /// hybrid scheduling policy.
    ///
    /// With a serial engine the graphs run back to back through the session
    /// workspace. With a parallel engine the batch is split by
    /// [`ExtractorConfig::batch_threshold_edges`](crate::config::ExtractorConfig::batch_threshold_edges):
    ///
    /// * graphs below the threshold are fanned out across the engine's
    ///   workers, each worker running the serial variant of the configured
    ///   algorithm with a worker-local workspace that is reused across the
    ///   graphs it processes (so a batch of same-shaped graphs pays one
    ///   allocation per worker, not one per graph);
    /// * graphs at or above the threshold run one at a time through
    ///   [`ExtractionSession::extract`] — the configured engine's
    ///   intra-graph parallelism and the session workspace.
    ///
    /// With
    /// [`ExtractorConfig::batch_adaptive`](crate::config::ExtractorConfig::batch_adaptive)
    /// the pivot is [`adaptive_batch_threshold_edges`] instead of the
    /// static configuration value (see the module docs).
    ///
    /// Results are slot-identical to single-graph runs for every
    /// deterministic configuration, whichever side of the threshold a graph
    /// lands on.
    pub fn extract_batch(&mut self, graphs: &[&CsrGraph]) -> Vec<ChordalResult> {
        if graphs.is_empty() {
            return Vec::new();
        }
        if self.config.engine.threads() <= 1 || graphs.len() == 1 {
            return graphs.iter().map(|g| self.extract(g)).collect();
        }
        let threshold = self.effective_batch_threshold();
        let small: Vec<usize> = (0..graphs.len())
            .filter(|&i| graphs[i].num_edges() < threshold)
            .collect();
        let slots: Vec<OnceLock<ChordalResult>> =
            (0..graphs.len()).map(|_| OnceLock::new()).collect();
        if !small.is_empty() {
            // Grain 1: each small graph is one schedulable unit of the
            // fan-out.
            let engine = self.config.engine.with_grain(1);
            // Worker-local extraction must not nest engine parallelism
            // inside engine parallelism, so the per-graph runs use the
            // serial engine. Pin the partition count first: "one partition
            // per engine worker" must resolve against the *configured*
            // engine, not the serial one.
            let mut serial_config = self.config.clone();
            serial_config.partitions = serial_config.effective_partitions();
            let serial_config = serial_config.with_engine(Engine::serial());
            let extractor = serial_config.build_extractor();
            thread_local! {
                /// Worker-local workspace: persists across the graphs one
                /// worker processes (and, because the workers are the
                /// persistent pool's, across batches).
                static BATCH_WORKSPACE: std::cell::RefCell<Workspace> =
                    std::cell::RefCell::new(Workspace::new());
            }
            engine.parallel_for_chunks(small.len(), |range| {
                BATCH_WORKSPACE.with(|workspace| {
                    let mut workspace = workspace.borrow_mut();
                    for si in range {
                        let i = small[si];
                        let result = extractor.extract_into(graphs[i], &mut workspace);
                        slots[i]
                            .set(result)
                            .expect("each batch slot is written exactly once");
                    }
                });
            });
        }
        for (i, graph) in graphs.iter().enumerate() {
            if graph.num_edges() >= threshold {
                let result = self.extract(graph);
                slots[i]
                    .set(result)
                    .expect("each batch slot is written exactly once");
            }
        }
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("every batch slot was filled by a worker")
            })
            .collect()
    }
}

impl std::fmt::Debug for ExtractionSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExtractionSession")
            .field("algorithm", &self.config.algorithm)
            .field("engine", &self.config.engine)
            .field("workspace_allocations", &self.workspace.allocations())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AdjacencyMode, Semantics};
    use chordal_generators::{rmat::RmatKind, rmat::RmatParams, structured};

    #[test]
    fn session_reuse_keeps_results_identical_and_allocations_flat() {
        let g = RmatParams::preset(RmatKind::G, 8, 1).generate();
        let mut session = ExtractionSession::new(ExtractorConfig::serial(AdjacencyMode::Sorted));
        let first = session.extract(&g);
        let allocations = session.workspace().allocations();
        for _ in 0..3 {
            let again = session.extract(&g);
            assert_eq!(again.edges(), first.edges());
        }
        assert_eq!(session.workspace().allocations(), allocations);
    }

    #[test]
    fn session_dispatches_every_algorithm() {
        let g = structured::grid(5, 5);
        for algorithm in Algorithm::ALL {
            let mut session = ExtractionSession::new(
                ExtractorConfig::serial(AdjacencyMode::Sorted).with_algorithm(algorithm),
            );
            assert_eq!(session.algorithm(), algorithm);
            assert_eq!(session.extractor_name(), algorithm.name());
            let result = session.extract(&g);
            assert!(result.num_chordal_edges() > 0, "{algorithm}");
        }
    }

    #[test]
    fn batch_results_match_single_runs_in_order() {
        let graphs: Vec<CsrGraph> = (0..6)
            .map(|seed| RmatParams::preset(RmatKind::Er, 7, seed).generate())
            .collect();
        let refs: Vec<&CsrGraph> = graphs.iter().collect();
        // Synchronous semantics: deterministic, so serial and fanned-out
        // batches must agree exactly.
        let config = ExtractorConfig::default()
            .with_engine(chordal_runtime::Engine::rayon(3))
            .with_semantics(Semantics::Synchronous);
        let mut parallel_session = ExtractionSession::new(config.clone());
        let batch = parallel_session.extract_batch(&refs);
        assert_eq!(batch.len(), graphs.len());
        let mut serial_session =
            ExtractionSession::new(config.with_engine(chordal_runtime::Engine::serial()));
        for (graph, from_batch) in graphs.iter().zip(&batch) {
            let single = serial_session.extract(graph);
            assert_eq!(single.edges(), from_batch.edges());
        }
    }

    #[test]
    fn batch_on_serial_engine_reuses_the_session_workspace() {
        let graphs: Vec<CsrGraph> = (0..4).map(|_| structured::grid(6, 6)).collect();
        let refs: Vec<&CsrGraph> = graphs.iter().collect();
        let mut session = ExtractionSession::new(ExtractorConfig::serial(AdjacencyMode::Sorted));
        let first = session.extract_batch(&refs);
        let allocations = session.workspace().allocations();
        let second = session.extract_batch(&refs);
        assert_eq!(session.workspace().allocations(), allocations);
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.edges(), b.edges());
        }
    }

    #[test]
    fn empty_batch_is_empty() {
        let mut session = ExtractionSession::with_algorithm(Algorithm::Dearing);
        assert!(session.extract_batch(&[]).is_empty());
    }

    #[test]
    fn hybrid_policy_matches_single_runs_on_both_sides_of_the_threshold() {
        // A mixed batch: scale-9 graphs are "large", scale-6 ones "small"
        // relative to the 2_000-edge pivot, so both scheduling paths run.
        let graphs: Vec<CsrGraph> = (0..3)
            .flat_map(|seed| {
                [
                    RmatParams::preset(RmatKind::Er, 9, seed).generate(),
                    RmatParams::preset(RmatKind::G, 6, seed).generate(),
                ]
            })
            .collect();
        let refs: Vec<&CsrGraph> = graphs.iter().collect();
        let config = ExtractorConfig::default()
            .with_engine(chordal_runtime::Engine::rayon(3))
            .with_semantics(Semantics::Synchronous)
            .with_batch_threshold_edges(2_000);
        assert!(graphs.iter().any(|g| g.num_edges() >= 2_000));
        assert!(graphs.iter().any(|g| g.num_edges() < 2_000));
        let batch = ExtractionSession::new(config.clone()).extract_batch(&refs);
        let mut single =
            ExtractionSession::new(config.with_engine(chordal_runtime::Engine::serial()));
        for (graph, from_batch) in graphs.iter().zip(&batch) {
            assert_eq!(single.extract(graph).edges(), from_batch.edges());
        }
    }

    #[test]
    fn threshold_extremes_recover_the_pure_policies() {
        let graphs: Vec<CsrGraph> = (0..4)
            .map(|seed| RmatParams::preset(RmatKind::Er, 7, seed).generate())
            .collect();
        let refs: Vec<&CsrGraph> = graphs.iter().collect();
        let base = ExtractorConfig::default()
            .with_engine(chordal_runtime::Engine::chunked(3))
            .with_semantics(Semantics::Synchronous);
        // Pure fan-out and pure intra-graph scheduling agree slot for slot
        // (synchronous semantics are schedule-independent).
        let fanned = ExtractionSession::new(base.clone().with_batch_threshold_edges(usize::MAX))
            .extract_batch(&refs);
        let intra = ExtractionSession::new(base.with_batch_threshold_edges(0)).extract_batch(&refs);
        for (a, b) in fanned.iter().zip(&intra) {
            assert_eq!(a.edges(), b.edges());
        }
    }

    #[test]
    fn intra_graph_path_reuses_the_session_workspace() {
        // threshold 0: every graph takes the intra-graph path, which runs
        // through the session workspace — so a second identical batch must
        // not allocate.
        let graphs: Vec<CsrGraph> = (0..3).map(|_| structured::grid(8, 8)).collect();
        let refs: Vec<&CsrGraph> = graphs.iter().collect();
        let mut session = ExtractionSession::new(
            ExtractorConfig::default()
                .with_engine(chordal_runtime::Engine::rayon(2))
                .with_batch_threshold_edges(0),
        );
        let first = session.extract_batch(&refs);
        let allocations = session.workspace().allocations();
        let second = session.extract_batch(&refs);
        assert_eq!(session.workspace().allocations(), allocations);
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.num_vertices(), b.num_vertices());
        }
    }

    #[test]
    fn adaptive_threshold_is_clamped_and_stable() {
        for threads in [2, 4, 16] {
            let t = adaptive_batch_threshold_edges(threads);
            assert!(
                (ADAPTIVE_MIN_THRESHOLD_EDGES..=ADAPTIVE_MAX_THRESHOLD_EDGES).contains(&t),
                "threads {threads}: pivot {t} out of clamp range"
            );
            // The overhead sample is memoised, so the pivot is stable
            // within a process.
            assert_eq!(t, adaptive_batch_threshold_edges(threads));
        }
        // More workers means more win per edge, so the pivot can only drop.
        assert!(adaptive_batch_threshold_edges(8) <= adaptive_batch_threshold_edges(2));
    }

    #[test]
    fn adaptive_threshold_never_places_intra_graph_on_serial_engines() {
        // A 1-thread engine cannot win anything from intra-graph
        // parallelism: the pivot must be "never", not a finite value that
        // would buy pure region overhead.
        assert_eq!(adaptive_batch_threshold_edges(0), usize::MAX);
        assert_eq!(adaptive_batch_threshold_edges(1), usize::MAX);
        let serial_session = ExtractionSession::new(
            ExtractorConfig::default()
                .with_engine(chordal_runtime::Engine::serial())
                .with_batch_adaptive(true),
        );
        assert_eq!(serial_session.effective_batch_threshold(), usize::MAX);
    }

    #[test]
    fn adaptive_sessions_report_the_calibrated_pivot() {
        let session = ExtractionSession::new(
            ExtractorConfig::default()
                .with_engine(chordal_runtime::Engine::rayon(3))
                .with_batch_threshold_edges(777)
                .with_batch_adaptive(true),
        );
        assert_eq!(
            session.effective_batch_threshold(),
            adaptive_batch_threshold_edges(3),
            "adaptive sessions must ignore the static pivot"
        );
        let static_session = ExtractionSession::new(
            ExtractorConfig::default()
                .with_engine(chordal_runtime::Engine::rayon(3))
                .with_batch_threshold_edges(777),
        );
        assert_eq!(static_session.effective_batch_threshold(), 777);
    }

    #[test]
    fn adaptive_batches_match_the_static_policy_exactly() {
        // Deterministic configs: placement must never change output, so the
        // adaptive policy agrees slot for slot with every static pivot.
        let graphs: Vec<CsrGraph> = (0..3)
            .flat_map(|seed| {
                [
                    RmatParams::preset(RmatKind::Er, 9, seed).generate(),
                    RmatParams::preset(RmatKind::G, 6, seed).generate(),
                ]
            })
            .collect();
        let refs: Vec<&CsrGraph> = graphs.iter().collect();
        let base = ExtractorConfig::default()
            .with_engine(chordal_runtime::Engine::rayon(3))
            .with_semantics(Semantics::Synchronous);
        let adaptive =
            ExtractionSession::new(base.clone().with_batch_adaptive(true)).extract_batch(&refs);
        for pivot in [0, 2_000, usize::MAX] {
            let static_batch =
                ExtractionSession::new(base.clone().with_batch_threshold_edges(pivot))
                    .extract_batch(&refs);
            for (i, (a, b)) in adaptive.iter().zip(&static_batch).enumerate() {
                assert_eq!(a.edges(), b.edges(), "pivot {pivot} slot {i}");
            }
        }
    }

    #[test]
    fn batch_works_for_serial_algorithms_on_parallel_engines() {
        let graphs: Vec<CsrGraph> = (0..5)
            .map(|seed| RmatParams::preset(RmatKind::B, 6, seed).generate())
            .collect();
        let refs: Vec<&CsrGraph> = graphs.iter().collect();
        let mut session = ExtractionSession::new(
            ExtractorConfig::default()
                .with_algorithm(Algorithm::Dearing)
                .with_engine(chordal_runtime::Engine::chunked(4)),
        );
        let batch = session.extract_batch(&refs);
        for (graph, result) in graphs.iter().zip(&batch) {
            assert_eq!(
                result.edges(),
                crate::dearing::extract_dearing(graph).edges()
            );
        }
    }
}
