//! Structured extraction and front-end errors.
//!
//! Every fallible step of configuring and driving an extraction — parsing
//! an algorithm/engine/variant name, reading a graph, validating a claimed
//! subgraph — reports a typed [`ExtractError`] instead of a bare string.
//! Front ends map the error category to a distinct process exit code via
//! [`ExtractError::exit_code`], so scripts can tell a usage mistake from an
//! I/O failure from a failed verification.

use std::fmt;

/// A typed error raised while configuring or running an extraction.
#[derive(Debug)]
pub enum ExtractError {
    /// The requested algorithm name is not in the [`crate::Algorithm`]
    /// registry.
    UnknownAlgorithm(String),
    /// The requested execution engine name is not recognised.
    UnknownEngine(String),
    /// The requested adjacency variant ("opt"/"unopt") is not recognised.
    UnknownVariant(String),
    /// The requested iteration semantics ("async"/"sync") is not recognised.
    UnknownSemantics(String),
    /// A front-end command is not recognised.
    UnknownCommand(String),
    /// A required option was not supplied.
    MissingOption(String),
    /// An option carried a value that does not parse.
    InvalidOption {
        /// Name of the offending option (without leading dashes).
        option: String,
        /// The value as given.
        given: String,
    },
    /// A positional argument was not expected.
    UnexpectedArgument(String),
    /// An I/O operation failed.
    Io {
        /// What was being read or written (usually a path).
        context: String,
        /// The underlying error.
        source: Box<dyn std::error::Error + Send + Sync>,
    },
    /// A verification of extraction output failed (not a subgraph, not
    /// chordal, mismatched vertex counts, ...).
    Verification(String),
}

impl ExtractError {
    /// Wraps an I/O (or I/O-adjacent) error with the path or action it
    /// concerns.
    pub fn io(
        context: impl Into<String>,
        source: impl Into<Box<dyn std::error::Error + Send + Sync>>,
    ) -> Self {
        ExtractError::Io {
            context: context.into(),
            source: source.into(),
        }
    }

    /// Builds an [`ExtractError::InvalidOption`].
    pub fn invalid_option(option: impl Into<String>, given: impl Into<String>) -> Self {
        ExtractError::InvalidOption {
            option: option.into(),
            given: given.into(),
        }
    }

    /// Process exit code for this error category. Usage and parse errors
    /// exit with 2, I/O failures with 3, verification failures with 4 —
    /// distinct codes so shell callers can branch without scraping stderr.
    pub fn exit_code(&self) -> u8 {
        match self {
            ExtractError::UnknownAlgorithm(_)
            | ExtractError::UnknownEngine(_)
            | ExtractError::UnknownVariant(_)
            | ExtractError::UnknownSemantics(_)
            | ExtractError::UnknownCommand(_)
            | ExtractError::MissingOption(_)
            | ExtractError::InvalidOption { .. }
            | ExtractError::UnexpectedArgument(_) => 2,
            ExtractError::Io { .. } => 3,
            ExtractError::Verification(_) => 4,
        }
    }
}

impl fmt::Display for ExtractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtractError::UnknownAlgorithm(name) => write!(
                f,
                "unknown algorithm `{name}` (expected alg1, reference, dearing or partitioned)"
            ),
            ExtractError::UnknownEngine(name) => write!(
                f,
                "unknown engine `{name}` (expected serial, pool or rayon)"
            ),
            ExtractError::UnknownVariant(name) => {
                write!(f, "unknown variant `{name}` (expected opt or unopt)")
            }
            ExtractError::UnknownSemantics(name) => {
                write!(f, "unknown semantics `{name}` (expected async or sync)")
            }
            ExtractError::UnknownCommand(name) => write!(f, "unknown command `{name}`"),
            ExtractError::MissingOption(option) => {
                write!(f, "missing required option --{option}")
            }
            ExtractError::InvalidOption { option, given } => {
                write!(f, "invalid value `{given}` for --{option}")
            }
            ExtractError::UnexpectedArgument(arg) => write!(f, "unexpected argument `{arg}`"),
            ExtractError::Io { context, source } => write!(f, "{context}: {source}"),
            ExtractError::Verification(message) => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for ExtractError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExtractError::Io { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct_per_category() {
        assert_eq!(ExtractError::UnknownAlgorithm("x".into()).exit_code(), 2);
        assert_eq!(ExtractError::MissingOption("in".into()).exit_code(), 2);
        assert_eq!(
            ExtractError::io("f", std::io::Error::other("boom")).exit_code(),
            3
        );
        assert_eq!(ExtractError::Verification("bad".into()).exit_code(), 4);
    }

    #[test]
    fn display_mentions_the_offending_input() {
        let e = ExtractError::invalid_option("scale", "huge");
        assert_eq!(e.to_string(), "invalid value `huge` for --scale");
        let e = ExtractError::UnknownEngine("gpu".into());
        assert!(e.to_string().contains("gpu"));
        assert!(e.to_string().contains("serial"));
    }

    #[test]
    fn io_errors_expose_their_source() {
        use std::error::Error;
        let e = ExtractError::io("reading graph.txt", std::io::Error::other("nope"));
        assert!(e.source().is_some());
        assert!(e.to_string().starts_with("reading graph.txt"));
    }
}
