//! Per-iteration instrumentation of the extraction (Figure 7 of the paper).

/// Statistics recorded across the iterations of the while-loop of
/// Algorithm 1.
///
/// The paper's Figure 7 plots the size of queue `Q1` at every iteration —
/// the amount of parallel work available — and discusses the total number of
/// iterations (≈3 for the R-MAT inputs, ≈10 for the biological networks).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IterationStats {
    /// `queue_sizes[t]` is the number of lowest-parent vertices processed in
    /// iteration `t` (the size of `Q1`).
    pub queue_sizes: Vec<usize>,
    /// `edges_added[t]` is the number of edges accepted into the chordal set
    /// during iteration `t`.
    pub edges_added: Vec<usize>,
}

impl IterationStats {
    /// Creates an empty record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of iterations recorded.
    pub fn iterations(&self) -> usize {
        self.queue_sizes.len()
    }

    /// Total number of edges accepted over all iterations.
    pub fn total_edges(&self) -> usize {
        self.edges_added.iter().sum()
    }

    /// Total queue entries processed over all iterations (a proxy for total
    /// work).
    pub fn total_queue_entries(&self) -> usize {
        self.queue_sizes.iter().sum()
    }

    /// Records one iteration.
    pub fn record(&mut self, queue_size: usize, edges_added: usize) {
        self.queue_sizes.push(queue_size);
        self.edges_added.push(edges_added);
    }

    /// The iteration with the largest queue (1-based), or `None` when no
    /// iterations were recorded. The paper observes this is usually the
    /// second iteration.
    pub fn peak_iteration(&self) -> Option<usize> {
        self.queue_sizes
            .iter()
            .enumerate()
            .max_by_key(|&(_, &s)| s)
            .map(|(i, _)| i + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_totals() {
        let mut s = IterationStats::new();
        s.record(10, 4);
        s.record(25, 9);
        s.record(3, 1);
        assert_eq!(s.iterations(), 3);
        assert_eq!(s.total_edges(), 14);
        assert_eq!(s.total_queue_entries(), 38);
        assert_eq!(s.peak_iteration(), Some(2));
    }

    #[test]
    fn empty_stats() {
        let s = IterationStats::new();
        assert_eq!(s.iterations(), 0);
        assert_eq!(s.total_edges(), 0);
        assert_eq!(s.peak_iteration(), None);
    }
}
