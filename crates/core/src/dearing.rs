//! The serial maximal chordal subgraph algorithm of Dearing, Shier and
//! Warner (Discrete Applied Mathematics, 1988).
//!
//! This is the baseline the paper starts from (Section II). The algorithm
//! grows the chordal subgraph one vertex at a time: it keeps, for every
//! unselected vertex `v`, the set `C(v)` of selected neighbours it may join
//! with; at each step it selects the unselected vertex with the largest
//! `|C(v)|`, adds the edges to `C(v)` to the chordal edge set, and updates
//! the candidate sets of `v`'s unselected neighbours `w` by the same subset
//! rule used in Algorithm 1 (`C(w) ⊆ C(v)` ⟹ `C(w) ← C(w) ∪ {v}`).
//!
//! Because the choice of the next vertex depends on all previous choices the
//! algorithm is inherently sequential — which is precisely the paper's
//! motivation for Algorithm 1. Complexity is `O(|E| Δ)`.

use crate::extractor::ChordalExtractor;
use crate::result::ChordalResult;
use crate::workspace::Workspace;
use chordal_graph::{Edge, GraphRef, VertexId};

/// The Dearing–Shier–Warner extractor, as a registry citizen.
///
/// Ties in the max-cardinality selection are broken by the smallest vertex
/// id, making every run deterministic.
#[derive(Debug, Clone, Default)]
pub struct DearingExtractor {
    start: VertexId,
}

impl DearingExtractor {
    /// Creates the extractor starting from vertex 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the extractor with an explicit preferred start vertex.
    pub fn with_start(start: VertexId) -> Self {
        Self { start }
    }
}

impl ChordalExtractor for DearingExtractor {
    fn name(&self) -> &'static str {
        "dearing"
    }

    fn extract_into(&self, graph: GraphRef<'_>, workspace: &mut Workspace) -> ChordalResult {
        let n = graph.num_vertices();
        if n == 0 {
            return ChordalResult::new(0, Vec::new(), 0, None);
        }
        let start = if (self.start as usize) < n {
            self.start
        } else {
            0
        };

        workspace.prepare_plain(n);
        workspace.prepare_buckets(n);
        // Workspace mapping: `marks` is the selected set, `lists` the
        // candidate chordal-neighbour sets (kept sorted by id so the subset
        // test is a linear merge), `buckets` the lazy bucket queue over
        // |C(v)|.
        let selected = &mut workspace.marks;
        let cand = &mut workspace.lists;
        let buckets = &mut workspace.buckets;
        let mut edges: Vec<Edge> = Vec::new();
        let mut steps = 0usize;

        // Seed the traversal order: prefer `start`, then any other vertex,
        // pushed in reverse so `start` pops first.
        let mut max_count = 0usize;
        buckets[0].extend((0..n as VertexId).filter(|&v| v != start).rev());
        buckets[0].push(start);

        let mut remaining = n;
        while remaining > 0 {
            // Pick the unselected vertex with the largest candidate set.
            let v = loop {
                while max_count > 0 && buckets[max_count].is_empty() {
                    max_count -= 1;
                }
                match buckets[max_count].pop() {
                    Some(candidate) => {
                        let c = candidate as usize;
                        if !selected[c] && cand[c].len() == max_count {
                            break candidate;
                        }
                    }
                    None => {
                        // Rebuild bucket 0 from untouched vertices (only
                        // reachable when every remaining vertex still has an
                        // empty set, e.g. isolated vertices after stale
                        // pops).
                        let rebuilt: Vec<VertexId> = (0..n)
                            .filter(|&v| !selected[v] && cand[v].is_empty())
                            .map(|v| v as VertexId)
                            .rev()
                            .collect();
                        if rebuilt.is_empty() {
                            max_count = (0..n)
                                .filter(|&v| !selected[v])
                                .map(|v| cand[v].len())
                                .max()
                                .unwrap_or(0);
                        } else {
                            buckets[0] = rebuilt;
                        }
                    }
                }
            };
            let vi = v as usize;
            selected[vi] = true;
            remaining -= 1;
            steps += 1;
            // Accept every edge from v to its candidate set.
            for &c in &cand[vi] {
                edges.push((c, v));
            }
            // Update unselected neighbours.
            for &w in graph.neighbors(v) {
                let wi = w as usize;
                if selected[wi] {
                    continue;
                }
                if sorted_subset_ids(&cand[wi], &cand[vi]) {
                    insert_sorted(&mut cand[wi], v);
                    let new_len = cand[wi].len();
                    if new_len > max_count {
                        max_count = new_len;
                    }
                    buckets[new_len].push(w);
                }
            }
        }

        ChordalResult::new(n, edges, steps, None)
    }
}

/// Runs the Dearing–Shier–Warner extraction, starting from vertex 0 of each
/// connected component, with a throwaway workspace.
pub fn extract_dearing<'a>(graph: impl Into<GraphRef<'a>>) -> ChordalResult {
    DearingExtractor::new().extract(graph)
}

/// Dearing–Shier–Warner extraction with an explicit preferred start vertex.
pub fn extract_dearing_from<'a>(graph: impl Into<GraphRef<'a>>, start: VertexId) -> ChordalResult {
    DearingExtractor::with_start(start).extract(graph)
}

/// `a ⊆ b` for id-sorted, duplicate-free vectors.
fn sorted_subset_ids(a: &[VertexId], b: &[VertexId]) -> bool {
    crate::parent::sorted_subset(a, b)
}

fn insert_sorted(v: &mut Vec<VertexId>, x: VertexId) {
    match v.binary_search(&x) {
        Ok(_) => {}
        Err(pos) => v.insert(pos, x),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use chordal_generators::{
        chordal_gen, erdos_renyi, rmat::RmatKind, rmat::RmatParams, structured,
    };
    use chordal_graph::CsrGraph;

    #[test]
    fn empty_and_isolated_graphs() {
        let r = extract_dearing(&CsrGraph::empty(0));
        assert_eq!(r.num_chordal_edges(), 0);
        let r = extract_dearing(&CsrGraph::empty(4));
        assert_eq!(r.num_chordal_edges(), 0);
    }

    #[test]
    fn chordal_inputs_are_fully_retained() {
        // Dearing et al. retain every edge of an already-chordal graph.
        for g in [
            structured::complete(7),
            structured::path(15),
            structured::star(10),
            chordal_gen::k_tree(30, 3, 5),
            chordal_gen::interval_graph(40, 0.1, 7),
            structured::disjoint_cliques(3, 5),
        ] {
            let r = extract_dearing(&g);
            assert_eq!(
                r.num_chordal_edges(),
                g.num_edges(),
                "chordal input must be retained in full"
            );
        }
    }

    #[test]
    fn output_is_chordal_and_maximal_on_nonchordal_inputs() {
        for (i, g) in [
            structured::cycle(6),
            structured::grid(4, 4),
            structured::complete_bipartite(3, 4),
            erdos_renyi::gnm(40, 120, 3),
            RmatParams::preset(RmatKind::G, 7, 1).generate(),
        ]
        .into_iter()
        .enumerate()
        {
            let r = extract_dearing(&g);
            let sub = r.subgraph(&g);
            assert!(verify::is_chordal(&sub), "case {i} not chordal");
            assert!(
                verify::check_maximality(&g, r.edges(), Some(200), 9).is_maximal(),
                "case {i} not maximal"
            );
        }
    }

    #[test]
    fn cycle_retains_all_but_one_edge() {
        let g = structured::cycle(8);
        let r = extract_dearing(&g);
        assert_eq!(r.num_chordal_edges(), 7);
    }

    #[test]
    fn start_vertex_out_of_range_falls_back() {
        let g = structured::path(5);
        let r = extract_dearing_from(&g, 99);
        assert_eq!(r.num_chordal_edges(), 4);
    }

    #[test]
    fn deterministic_across_runs() {
        let g = RmatParams::preset(RmatKind::B, 7, 4).generate();
        assert_eq!(extract_dearing(&g).edges(), extract_dearing(&g).edges());
    }

    #[test]
    fn workspace_reuse_is_transparent() {
        let extractor = DearingExtractor::new();
        let mut ws = Workspace::new();
        let big = RmatParams::preset(RmatKind::G, 7, 2).generate();
        let small = structured::cycle(9);
        let big_fresh = extractor.extract(&big);
        let small_fresh = extractor.extract(&small);
        assert_eq!(
            extractor.extract_into((&big).into(), &mut ws).edges(),
            big_fresh.edges()
        );
        assert_eq!(
            extractor.extract_into((&small).into(), &mut ws).edges(),
            small_fresh.edges()
        );
        assert_eq!(
            extractor.extract_into((&big).into(), &mut ws).edges(),
            big_fresh.edges()
        );
    }
}
