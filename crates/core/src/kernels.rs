//! Branch-light set kernels over sorted neighbor lists.
//!
//! Every hot inner loop of the extraction stack reduces to one of three
//! primitives over ascending, duplicate-free `u32` slices (the hot CSR
//! arrays of [`chordal_graph::layout`], or the chordal-neighbor arenas the
//! extractors maintain in the same shape):
//!
//! * **intersection** — the triangle checks of the partitioned baseline and
//!   the clustering analysis ([`intersect_count`], [`intersect_any`]);
//! * **subset** — Algorithm 1's `C[w] ⊆ C[v]` acceptance test
//!   ([`sorted_subset`], [`sorted_subset_by`]);
//! * **blocked frontier expansion** — the separator form of the chordal
//!   edge-insertion test used by verification and repair
//!   ([`SeparatorSearch`]).
//!
//! Centralising them here gives each one a single tuned implementation
//! instead of five ad-hoc copies, and gives the benchmark suite one place
//! to ablate (`experiments kernels`).
//!
//! # Branch-light merging, galloping, and the adaptive crossover
//!
//! The merge kernels advance both cursors with *arithmetic* on comparison
//! results (`i += (x <= y) as usize`) rather than three-way `match`
//! branches: neighbor values are effectively random at this granularity,
//! so a conditional branch per element mispredicts constantly while a
//! flag-to-integer conversion costs one cycle, branch-free.
//!
//! Merging is linear in `|a| + |b|`, which wastes work when one side is
//! much smaller: a 4-element list intersected against a 10⁵-element hub
//! list should *search*, not scan. The galloping kernels walk the small
//! side and locate each element in the large side by exponential probing
//! from a moving base (doubling steps, then a binary search over the last
//! gap), costing `O(|small| · log |large|)`. The adaptive entry points
//! ([`intersect_count`], [`intersect_any`]) switch between the two on the
//! size ratio [`GALLOP_RATIO`] — merge for comparable sizes, gallop for
//! skewed ones — which is the standard crossover for sorted-set
//! intersection and what the `BENCH_kernels.json` ablation measures across
//! degree-skew families.
//!
//! All kernels are pure functions of their slice contents: results do not
//! depend on layout width (compact vs wide offsets), storage (heap vs
//! mmap), or thread count, which is what keeps the extractors byte-identical
//! across the whole configuration matrix.

use chordal_graph::VertexId;

/// Size ratio (`|large| / |small|`) beyond which the adaptive intersection
/// kernels switch from linear merging to galloping. At ratios below this,
/// the merge's sequential memory access beats the gallop's scattered
/// probes; above it, skipping most of the large list wins.
pub const GALLOP_RATIO: usize = 16;

/// Number of common elements of two ascending, duplicate-free slices,
/// by branch-light two-pointer merge. Linear in `|a| + |b|`.
#[inline]
pub fn intersect_count_merge(a: &[VertexId], b: &[VertexId]) -> usize {
    let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        count += (x == y) as usize;
        i += (x <= y) as usize;
        j += (y <= x) as usize;
    }
    count
}

/// Number of common elements of two ascending, duplicate-free slices, by
/// galloping the smaller slice through the larger one. `O(|small| · log
/// |large|)`; call through [`intersect_count`] unless ablating.
#[inline]
pub fn intersect_count_gallop(a: &[VertexId], b: &[VertexId]) -> usize {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut base = 0usize;
    let mut count = 0usize;
    for &x in small {
        let (found, next) = gallop(large, base, x);
        count += found as usize;
        base = next;
        if base >= large.len() {
            break;
        }
    }
    count
}

/// Adaptive intersection count: merge for comparable sizes, gallop when
/// the size ratio reaches [`GALLOP_RATIO`]. Both inputs ascending and
/// duplicate-free.
#[inline]
pub fn intersect_count(a: &[VertexId], b: &[VertexId]) -> usize {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        return 0;
    }
    if large.len() / small.len() >= GALLOP_RATIO {
        intersect_count_gallop(small, large)
    } else {
        intersect_count_merge(small, large)
    }
}

/// Whether two ascending, duplicate-free slices share an element, with an
/// early exit on the first match. Merge variant.
#[inline]
pub fn intersect_any_merge(a: &[VertexId], b: &[VertexId]) -> bool {
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        if x == y {
            return true;
        }
        i += (x < y) as usize;
        j += (y < x) as usize;
    }
    false
}

/// Whether two ascending, duplicate-free slices share an element, galloping
/// the smaller through the larger with an early exit on the first match.
#[inline]
pub fn intersect_any_gallop(a: &[VertexId], b: &[VertexId]) -> bool {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut base = 0usize;
    for &x in small {
        let (found, next) = gallop(large, base, x);
        if found {
            return true;
        }
        base = next;
        if base >= large.len() {
            return false;
        }
    }
    false
}

/// Adaptive emptiness test for the intersection of two ascending,
/// duplicate-free slices: the triangle-existence primitive.
#[inline]
pub fn intersect_any(a: &[VertexId], b: &[VertexId]) -> bool {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        return false;
    }
    if large.len() / small.len() >= GALLOP_RATIO {
        intersect_any_gallop(small, large)
    } else {
        intersect_any_merge(small, large)
    }
}

/// Locates `x` in the ascending slice `hay[base..]` by exponential probing
/// followed by a binary search of the final gap. Returns whether `x` was
/// found and the position of the first element `>= x` (the base for the
/// next, larger probe — callers walk ascending keys).
#[inline]
fn gallop(hay: &[VertexId], base: usize, x: VertexId) -> (bool, usize) {
    let mut lo = base;
    let mut step = 1usize;
    // Exponential probe: find a window [lo, hi) whose end passes x.
    let mut hi = loop {
        let probe = lo + step;
        match hay.get(probe) {
            Some(&v) if v < x => {
                lo = probe + 1;
                step <<= 1;
            }
            _ => break (lo + step).min(hay.len()),
        }
    };
    if lo < hay.len() && hay[lo] < x {
        lo += 1;
    }
    // Binary search of the remaining gap for the first element >= x.
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if hay[mid] < x {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    (
        hay.get(lo) == Some(&x),
        lo + (hay.get(lo) == Some(&x)) as usize,
    )
}

/// Tests whether sorted slice `a` is a subset of sorted slice `b`
/// (both ascending, duplicate-free). Linear in `|a| + |b|` with
/// branch-light cursor advancement; the "efficient, linear in terms of the
/// size of the smallest set" test of the paper's Section V.
#[inline]
pub fn sorted_subset(a: &[VertexId], b: &[VertexId]) -> bool {
    if a.len() > b.len() {
        return false;
    }
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() {
        // a ⊆ b needs at least a.len() - i elements of b left to match.
        if a.len() - i > b.len() - j {
            return false;
        }
        let (x, y) = (a[i], b[j]);
        if y > x {
            return false;
        }
        i += (x == y) as usize;
        j += 1;
    }
    true
}

/// [`sorted_subset`] over *indexed accessors* instead of slices, for sets
/// that live in non-slice storage — the atomic chordal-neighbor arena of
/// the parallel extractor reads each element with an atomic load, so it
/// cannot hand out a `&[u32]`. Semantically identical to materialising
/// both sequences and calling [`sorted_subset`].
#[inline]
pub fn sorted_subset_by<A, B>(len_a: usize, a: A, len_b: usize, b: B) -> bool
where
    A: Fn(usize) -> VertexId,
    B: Fn(usize) -> VertexId,
{
    if len_a > len_b {
        return false;
    }
    let (mut i, mut j) = (0usize, 0usize);
    while i < len_a {
        if len_a - i > len_b - j {
            return false;
        }
        let (x, y) = (a(i), b(j));
        if y > x {
            return false;
        }
        i += (x == y) as usize;
        j += 1;
    }
    true
}

/// The blocked-frontier kernel behind the chordal edge-insertion test:
/// reusable epoch-stamped scratch answering "does `N(u) ∩ N(v)` separate
/// `u` from `v`?" over any adjacency exposed as a neighbor-slice lookup.
///
/// The search is bidirectional — each round expands the side with the
/// smaller open frontier — so a positive answer (the pair *is* separated)
/// costs about the smaller piece the separator cuts off rather than the
/// whole component. Epoch stamps make consecutive queries allocation-free:
/// buffers are never cleared between candidates, only re-stamped.
///
/// Callers: the maximality checker ([`crate::verify`]) over the chordal
/// subgraph's hot CSR arrays, and the repair maintainer
/// ([`crate::repair::incremental`]) over its incrementally updated
/// adjacency lists.
#[derive(Debug, Default)]
pub struct SeparatorSearch {
    /// Odd epoch marks `N(u)`; upgraded even epoch marks the blocked
    /// common neighborhood `N(u) ∩ N(v)`.
    stamp: Vec<u32>,
    /// Vertices reached from `u` (current epoch).
    visited_a: Vec<u32>,
    /// Vertices reached from `v` (current epoch).
    visited_b: Vec<u32>,
    queue_a: Vec<VertexId>,
    queue_b: Vec<VertexId>,
    epoch: u32,
}

impl SeparatorSearch {
    /// Scratch sized for graphs of `n` vertices.
    pub fn new(n: usize) -> Self {
        let mut s = Self::default();
        s.resize(n);
        s
    }

    /// Grows (never shrinks) the scratch to cover `n` vertices, preserving
    /// current stamps. Returns whether a buffer had to grow.
    pub fn resize(&mut self, n: usize) -> bool {
        let grew = self.stamp.len() < n;
        if grew {
            self.stamp.resize(n, 0);
            self.visited_a.resize(n, 0);
            self.visited_b.resize(n, 0);
        }
        grew
    }

    /// Resets all stamps (logically forgetting every previous query).
    pub fn reset(&mut self) {
        self.stamp.fill(0);
        self.visited_a.fill(0);
        self.visited_b.fill(0);
        self.epoch = 0;
    }

    /// Heap bytes retained by the scratch buffers.
    pub fn allocated_bytes(&self) -> usize {
        use std::mem::size_of;
        (self.stamp.capacity() + self.visited_a.capacity() + self.visited_b.capacity())
            * size_of::<u32>()
            + (self.queue_a.capacity() + self.queue_b.capacity()) * size_of::<VertexId>()
    }

    /// Whether `N(u) ∩ N(v)` separates `u` from `v` in the graph whose
    /// adjacency `neighbors` exposes — i.e. whether adding the (absent)
    /// edge `uv` to that chordal graph keeps it chordal.
    ///
    /// `known_connected` enables the empty-separator short-circuit: when
    /// the caller has already established that `u` and `v` share a
    /// component (e.g. via union-find, as the repair maintainer does), an
    /// empty common neighborhood cannot separate them and the search is
    /// skipped outright. Without that knowledge the full search still
    /// returns the right answer — a cross-component pair is vacuously
    /// separated — it just cannot take the shortcut.
    pub fn separates<'g, N>(
        &mut self,
        neighbors: N,
        u: VertexId,
        v: VertexId,
        known_connected: bool,
    ) -> bool
    where
        N: Fn(VertexId) -> &'g [VertexId],
    {
        self.epoch = match self.epoch.checked_add(2) {
            Some(e) => e,
            None => {
                self.reset();
                2
            }
        };
        let epoch = self.epoch;
        for &w in neighbors(u) {
            self.stamp[w as usize] = epoch - 1;
        }
        // Upgrading the common neighborhood to the blocked stamp keeps both
        // searches from ever entering it.
        let mut common_empty = true;
        for &w in neighbors(v) {
            if self.stamp[w as usize] == epoch - 1 {
                self.stamp[w as usize] = epoch;
                common_empty = false;
            }
        }
        if known_connected && common_empty {
            // Same component, nothing blocked: the empty set separates
            // nothing.
            return false;
        }
        self.queue_a.clear();
        self.queue_a.push(u);
        self.visited_a[u as usize] = epoch;
        self.queue_b.clear();
        self.queue_b.push(v);
        self.visited_b[v as usize] = epoch;
        let (mut head_a, mut head_b) = (0usize, 0usize);
        loop {
            let open_a = self.queue_a.len() - head_a;
            let open_b = self.queue_b.len() - head_b;
            if open_a == 0 || open_b == 0 {
                // One side exhausted its frontier without meeting the
                // other: the common neighborhood separates the pair.
                return true;
            }
            // Expand the smaller open frontier.
            if open_a <= open_b {
                let w = self.queue_a[head_a];
                head_a += 1;
                for &x in neighbors(w) {
                    let xi = x as usize;
                    if self.stamp[xi] == epoch {
                        continue; // blocked: inside N(u) ∩ N(v)
                    }
                    if self.visited_b[xi] == epoch {
                        return false; // the searches met: still connected
                    }
                    if self.visited_a[xi] != epoch {
                        self.visited_a[xi] = epoch;
                        self.queue_a.push(x);
                    }
                }
            } else {
                let w = self.queue_b[head_b];
                head_b += 1;
                for &x in neighbors(w) {
                    let xi = x as usize;
                    if self.stamp[xi] == epoch {
                        continue;
                    }
                    if self.visited_a[xi] == epoch {
                        return false;
                    }
                    if self.visited_b[xi] != epoch {
                        self.visited_b[xi] = epoch;
                        self.queue_b.push(x);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeSet;

    /// Naive scalar reference: hash-set intersection.
    fn naive_intersect(a: &[VertexId], b: &[VertexId]) -> Vec<VertexId> {
        let sb: BTreeSet<_> = b.iter().copied().collect();
        a.iter().copied().filter(|x| sb.contains(x)).collect()
    }

    fn naive_subset(a: &[VertexId], b: &[VertexId]) -> bool {
        let sb: BTreeSet<_> = b.iter().copied().collect();
        a.iter().all(|x| sb.contains(x))
    }

    /// Draws an ascending duplicate-free list of `len` ids below `max`.
    fn sorted_ids(rng: &mut StdRng, len: usize, max: u32) -> Vec<VertexId> {
        let mut set = BTreeSet::new();
        while set.len() < len.min(max as usize) {
            set.insert(rng.gen_range(0..max));
        }
        set.into_iter().collect()
    }

    /// The seeded family matrix of the property suite: (len_a, len_b,
    /// value range) per skew family. Exercises empty, disjoint-prone,
    /// identical-prone, mildly and heavily skewed shapes.
    fn families() -> Vec<(usize, usize, u32)> {
        vec![
            (0, 0, 10),
            (0, 50, 100),
            (5, 5, 10),        // dense overlap
            (40, 40, 5_000),   // sparse, likely disjoint
            (8, 128, 1_000),   // 16x skew: the gallop crossover
            (4, 1024, 10_000), // 256x skew
            (1, 300, 400),     // needle
        ]
    }

    #[test]
    fn intersection_variants_match_naive_reference() {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        for (la, lb, max) in families() {
            for _ in 0..20 {
                let a = sorted_ids(&mut rng, la, max);
                let b = sorted_ids(&mut rng, lb, max);
                let expected = naive_intersect(&a, &b).len();
                assert_eq!(intersect_count_merge(&a, &b), expected, "merge {la}/{lb}");
                assert_eq!(intersect_count_merge(&b, &a), expected);
                assert_eq!(intersect_count_gallop(&a, &b), expected, "gallop {la}/{lb}");
                assert_eq!(intersect_count_gallop(&b, &a), expected);
                assert_eq!(intersect_count(&a, &b), expected, "adaptive {la}/{lb}");
                assert_eq!(intersect_any_merge(&a, &b), expected > 0);
                assert_eq!(intersect_any_gallop(&a, &b), expected > 0);
                assert_eq!(intersect_any(&a, &b), expected > 0);
                assert_eq!(intersect_any(&b, &a), expected > 0);
            }
        }
    }

    #[test]
    fn subset_variants_match_naive_reference() {
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        for (la, lb, max) in families() {
            for round in 0..20 {
                let b = sorted_ids(&mut rng, lb.max(la), max);
                // Alternate genuine subsets with random (likely non-subset)
                // draws so both outcomes are exercised.
                let a: Vec<VertexId> = if round % 2 == 0 {
                    b.iter().copied().step_by(2).take(la).collect()
                } else {
                    sorted_ids(&mut rng, la, max)
                };
                let expected = naive_subset(&a, &b);
                assert_eq!(sorted_subset(&a, &b), expected, "{a:?} ⊆ {b:?}");
                assert_eq!(
                    sorted_subset_by(a.len(), |i| a[i], b.len(), |j| b[j]),
                    expected
                );
            }
        }
    }

    #[test]
    fn kernels_handle_u32_boundary_values() {
        let hi = u32::MAX;
        let a = vec![0, 1, hi - 1, hi];
        let b = vec![hi - 1, hi];
        assert_eq!(intersect_count_merge(&a, &b), 2);
        assert_eq!(intersect_count_gallop(&a, &b), 2);
        assert_eq!(intersect_count(&a, &b), 2);
        assert!(intersect_any(&a, &[hi]));
        assert!(!intersect_any(&[0, 2, 4], &[1, 3, 5]));
        assert!(sorted_subset(&b, &a));
        assert!(!sorted_subset(&a, &b));
        assert!(sorted_subset(&[hi], &[hi]));
        // Empty cases.
        assert_eq!(intersect_count(&[], &a), 0);
        assert!(!intersect_any(&[], &a));
        assert!(sorted_subset(&[], &[]));
    }

    #[test]
    fn gallop_skips_are_consistent_with_moving_base() {
        // Ascending probes across a long haystack: every element found,
        // none double-counted, bases strictly advance.
        let hay: Vec<VertexId> = (0..10_000u32).map(|i| i * 3).collect();
        let needles: Vec<VertexId> = (0..500u32).map(|i| i * 60).collect();
        assert_eq!(intersect_count_gallop(&needles, &hay), 500);
        let missing: Vec<VertexId> = (0..500u32).map(|i| i * 60 + 1).collect();
        assert_eq!(intersect_count_gallop(&missing, &hay), 0);
    }

    #[test]
    fn separator_search_matches_direct_definition() {
        // Path 0-1-2-3: N(0) ∩ N(3) = ∅ and 0,3 share a component, so the
        // empty set does not separate them... but removing nothing leaves
        // them connected: separates = false. Adding the chord set: in the
        // diamond 0-1-2 + 0-2-3, N(1) ∩ N(3) = {0, 2}? adj: 0:{1,2}, 1:{0,2},
        // 2:{0,1,3}, 3:{2}. N(1) ∩ N(3) = {2}, removing 2 disconnects 1
        // from 3: separates = true (triangle 1-3-2 would be chordal).
        let adj: Vec<Vec<VertexId>> = vec![vec![1, 2], vec![0, 2], vec![0, 1, 3], vec![2]];
        let mut s = SeparatorSearch::new(4);
        let n = |v: VertexId| adj[v as usize].as_slice();
        assert!(s.separates(n, 1, 3, true));
        // Chordless 4-cycle 0-1-2-3-0 minus edge (0,3): path 0-1-2-3,
        // N(0) ∩ N(3) = ∅ (0:{1}, 3:{2}) yet connected → not separated.
        let path: Vec<Vec<VertexId>> = vec![vec![1], vec![0, 2], vec![1, 3], vec![2]];
        let mut s = SeparatorSearch::new(4);
        let n = |v: VertexId| path[v as usize].as_slice();
        assert!(!s.separates(n, 0, 3, true));
        assert!(
            !s.separates(n, 0, 3, false),
            "shortcut must not change the answer"
        );
        // Different components: vacuously separated (without the
        // known_connected shortcut the search must still say true).
        let two: Vec<Vec<VertexId>> = vec![vec![1], vec![0], vec![3], vec![2]];
        let mut s = SeparatorSearch::new(4);
        let n = |v: VertexId| two[v as usize].as_slice();
        assert!(s.separates(n, 0, 2, false));
    }

    #[test]
    fn separator_search_reuses_buffers_across_epoch_wrap() {
        let adj: Vec<Vec<VertexId>> = vec![vec![1], vec![0, 2], vec![1, 3], vec![2]];
        let mut s = SeparatorSearch::new(4);
        // Force an epoch wrap by driving the counter near u32::MAX.
        s.epoch = u32::MAX - 1;
        let n = |v: VertexId| adj[v as usize].as_slice();
        assert!(!s.separates(n, 0, 3, true));
        assert!(!s.separates(n, 0, 3, true), "post-wrap query must agree");
        let bytes = s.allocated_bytes();
        assert!(bytes > 0);
        assert!(!s.resize(2), "shrinking is a no-op");
        assert!(s.resize(8), "growing reports the growth");
    }
}
