//! Lowest-parent helpers.
//!
//! A vertex's *parents* are its neighbours with a smaller identification
//! number; its *lowest parent* (LP) is the smallest of these. Algorithm 1
//! walks every vertex through its parents in increasing order, one parent
//! per iteration. The two variants of the paper differ only in how the next
//! parent is located:
//!
//! * **Sorted (Opt)** — parents form a prefix of the ascending adjacency
//!   list, so a cursor into that prefix yields the next parent in O(1).
//! * **Unsorted (Unopt)** — the whole neighbour list is scanned for the
//!   smallest id that is larger than the current parent and smaller than the
//!   vertex itself.

use chordal_graph::{GraphRef, VertexId, NO_VERTEX};

/// Finds the lowest parent of `v` in a graph with *sorted* adjacency, along
/// with the cursor position of that parent. Returns `(NO_VERTEX, 0)` when
/// `v` has no parent.
#[inline]
pub fn first_parent_sorted(graph: GraphRef<'_>, v: VertexId) -> (VertexId, u32) {
    let adj = graph.neighbors(v);
    match adj.first() {
        Some(&w) if w < v => (w, 0),
        _ => (NO_VERTEX, 0),
    }
}

/// Given the cursor of the current parent of `v`, finds the next parent in a
/// graph with sorted adjacency. Returns `(NO_VERTEX, cursor)` when no parent
/// remains.
#[inline]
pub fn next_parent_sorted(graph: GraphRef<'_>, v: VertexId, cursor: u32) -> (VertexId, u32) {
    let adj = graph.neighbors(v);
    let next = cursor as usize + 1;
    match adj.get(next) {
        Some(&w) if w < v => (w, next as u32),
        _ => (NO_VERTEX, cursor),
    }
}

/// Finds the lowest parent of `v` by scanning an arbitrarily ordered
/// adjacency list (the Unopt variant).
#[inline]
pub fn first_parent_scan(graph: GraphRef<'_>, v: VertexId) -> VertexId {
    let mut best = NO_VERTEX;
    for &w in graph.neighbors(v) {
        if w < v && (best == NO_VERTEX || w < best) {
            best = w;
        }
    }
    best
}

/// Finds the next parent of `v` after `current` by scanning the adjacency
/// list: the smallest neighbour strictly between `current` and `v`.
#[inline]
pub fn next_parent_scan(graph: GraphRef<'_>, v: VertexId, current: VertexId) -> VertexId {
    let mut best = NO_VERTEX;
    for &w in graph.neighbors(v) {
        if w > current && w < v && (best == NO_VERTEX || w < best) {
            best = w;
        }
    }
    best
}

/// Tests whether sorted slice `a` is a subset of sorted slice `b`
/// (ascending, duplicate-free) — the paper's `C[w] ⊆ C[v]` acceptance test;
/// both chordal-neighbour sets are built in ascending order by
/// construction. Re-exported from [`crate::kernels::sorted_subset`], the
/// branch-light shared implementation.
#[inline]
pub fn sorted_subset(a: &[VertexId], b: &[VertexId]) -> bool {
    crate::kernels::sorted_subset(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chordal_graph::builder::graph_from_edges;
    use chordal_graph::CsrGraph;

    fn sample_graph() -> CsrGraph {
        // vertex 4 adjacent to 0, 2, 3, 5; vertex 2 adjacent to 4 only; etc.
        graph_from_edges(6, vec![(0, 4), (2, 4), (3, 4), (4, 5), (0, 1)])
    }

    #[test]
    fn sorted_parent_walk() {
        let graph = sample_graph();
        let g = GraphRef::from(&graph);
        // vertex 4: sorted neighbours [0, 2, 3, 5]; parents 0, 2, 3.
        let (p0, c0) = first_parent_sorted(g, 4);
        assert_eq!(p0, 0);
        let (p1, c1) = next_parent_sorted(g, 4, c0);
        assert_eq!(p1, 2);
        let (p2, c2) = next_parent_sorted(g, 4, c1);
        assert_eq!(p2, 3);
        let (p3, _) = next_parent_sorted(g, 4, c2);
        assert_eq!(p3, NO_VERTEX);
    }

    #[test]
    fn sorted_no_parent_cases() {
        let graph = sample_graph();
        let g = GraphRef::from(&graph);
        // vertex 0 has neighbours 1 and 4, both larger.
        assert_eq!(first_parent_sorted(g, 0).0, NO_VERTEX);
        // vertex 1's only neighbour is 0, which is smaller.
        assert_eq!(first_parent_sorted(g, 1).0, 0);
    }

    #[test]
    fn scan_parent_walk_matches_sorted_walk() {
        let graph = sample_graph();
        let g = GraphRef::from(&graph);
        let scrambled_graph = graph.with_scrambled_adjacency(17);
        let scrambled = GraphRef::from(&scrambled_graph);
        for v in 0..6u32 {
            // Walk parents with both strategies and compare sequences.
            let mut sorted_seq = Vec::new();
            let (mut p, mut c) = first_parent_sorted(g, v);
            while p != NO_VERTEX {
                sorted_seq.push(p);
                let (np, nc) = next_parent_sorted(g, v, c);
                p = np;
                c = nc;
            }
            let mut scan_seq = Vec::new();
            let mut p = first_parent_scan(scrambled, v);
            while p != NO_VERTEX {
                scan_seq.push(p);
                p = next_parent_scan(scrambled, v, p);
            }
            assert_eq!(sorted_seq, scan_seq, "vertex {v}");
        }
    }

    #[test]
    fn sorted_subset_basic_cases() {
        assert!(sorted_subset(&[], &[]));
        assert!(sorted_subset(&[], &[1, 2]));
        assert!(sorted_subset(&[2], &[1, 2, 3]));
        assert!(sorted_subset(&[1, 3], &[1, 2, 3]));
        assert!(!sorted_subset(&[1, 4], &[1, 2, 3]));
        assert!(!sorted_subset(&[0], &[1, 2, 3]));
        assert!(!sorted_subset(&[1, 2, 3], &[1, 2]));
        assert!(sorted_subset(&[1, 2, 3], &[1, 2, 3]));
    }
}
