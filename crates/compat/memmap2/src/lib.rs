//! Minimal in-tree substitute for the `memmap2` crate.
//!
//! The build environment has no crates.io access, so — like the `rayon` and
//! `rand` shims next door — this crate reimplements exactly the slice of the
//! real `memmap2` API the workspace uses: a read-only [`Mmap`] created from an
//! open [`File`] that dereferences to `&[u8]`.
//!
//! On Unix the mapping is a real `mmap(2)` (`PROT_READ`, `MAP_PRIVATE`)
//! obtained through `extern "C"` declarations resolved by the system libc at
//! link time; the region is `munmap`ed on drop. On other platforms — or if
//! the syscall fails — [`Mmap::map`] falls back to reading the whole file
//! into an anonymous heap buffer, which preserves the API contract (a stable
//! `&[u8]` of the file's bytes) at the cost of residency.

#![deny(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::fs::File;
use std::io;
use std::ops::Deref;

/// A read-only memory map of a file (or a heap copy on fallback paths).
#[derive(Debug)]
pub struct Mmap {
    inner: Inner,
}

#[derive(Debug)]
enum Inner {
    /// A live `mmap(2)` region. The pointer is valid for `len` bytes until
    /// `munmap` in `Drop`.
    #[cfg(unix)]
    Mapped { ptr: *const u8, len: usize },
    /// Heap fallback: the whole file read into memory.
    Heap(Vec<u8>),
}

// SAFETY: the mapped region is immutable (PROT_READ, MAP_PRIVATE) and owned
// exclusively by this value, so it can move to another thread wholesale.
unsafe impl Send for Mmap {}
// SAFETY: with no interior mutability and a read-only mapping, concurrent
// `&Mmap` access is concurrent reads of immutable bytes.
unsafe impl Sync for Mmap {}

#[cfg(unix)]
mod sys {
    use std::ffi::{c_int, c_void};
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;
    const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    /// Maps `len` bytes of `file` read-only. Returns `None` when the kernel
    /// refuses (e.g. the path is on a filesystem without mmap support), in
    /// which case the caller falls back to a heap read.
    pub(crate) fn map_readonly(file: &File, len: usize) -> Option<*const u8> {
        // MAP_PRIVATE means later writes to the file cannot corrupt safety
        // invariants of the returned region (contents may still be loaded
        // lazily; callers treat the bytes as untrusted input regardless).
        // SAFETY: all-zero hint address, a length we just took from the
        // file's metadata, and a file descriptor that outlives the call.
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == MAP_FAILED {
            None
        } else {
            Some(ptr as *const u8)
        }
    }

    /// Unmaps a region previously returned by [`map_readonly`].
    pub(crate) fn unmap(ptr: *const u8, len: usize) {
        // SAFETY: `ptr`/`len` came from a successful `map_readonly` call and
        // are unmapped exactly once (enforced by Drop ownership).
        let rc = unsafe { munmap(ptr as *mut c_void, len) };
        debug_assert_eq!(rc, 0, "munmap failed: {}", io::Error::last_os_error());
    }
}

impl Mmap {
    /// Maps `file` read-only for its full current length.
    ///
    /// # Safety
    ///
    /// As with the real `memmap2`, the caller must ensure the file is not
    /// truncated or rewritten while the map is alive; the operating system
    /// may deliver `SIGBUS` on access to pages past a shrunk file. Treat the
    /// bytes as untrusted input (validate, don't assume).
    // SAFETY: contract is the `# Safety` section above — the caller keeps
    // the file unmodified for the mapping's lifetime.
    pub unsafe fn map(file: &File) -> io::Result<Mmap> {
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "file too large to map on this platform",
            ));
        }
        let len = len as usize;
        // A zero-length mmap is an error on Linux; model an empty file as an
        // empty heap buffer instead.
        #[cfg(unix)]
        if len > 0 {
            if let Some(ptr) = sys::map_readonly(file, len) {
                return Ok(Mmap {
                    inner: Inner::Mapped { ptr, len },
                });
            }
        }
        let mut buf = Vec::with_capacity(len);
        let mut reader = file;
        io::Read::read_to_end(&mut reader, &mut buf)?;
        Ok(Mmap {
            inner: Inner::Heap(buf),
        })
    }

    /// Length of the mapping in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.inner {
            #[cfg(unix)]
            Inner::Mapped { len, .. } => *len,
            Inner::Heap(buf) => buf.len(),
        }
    }

    /// Whether the mapping is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether this is a true kernel mapping (as opposed to the heap-read
    /// fallback). Exposed for diagnostics and tests.
    #[inline]
    pub fn is_kernel_mapping(&self) -> bool {
        match &self.inner {
            #[cfg(unix)]
            Inner::Mapped { .. } => true,
            Inner::Heap(_) => false,
        }
    }
}

impl Deref for Mmap {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        match &self.inner {
            #[cfg(unix)]
            Inner::Mapped { ptr, len } => {
                // SAFETY: the region is mapped readable for `len` bytes and
                // stays mapped until Drop; u8 has no validity invariants.
                unsafe { std::slice::from_raw_parts(*ptr, *len) }
            }
            Inner::Heap(buf) => buf,
        }
    }
}

impl AsRef<[u8]> for Mmap {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Inner::Mapped { ptr, len } = self.inner {
            sys::unmap(ptr, len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("memmap2_compat_{}_{name}", std::process::id()))
    }

    #[test]
    fn maps_file_contents() {
        let path = temp_path("basic");
        let payload = b"hello mapped world";
        std::fs::File::create(&path)
            .unwrap()
            .write_all(payload)
            .unwrap();
        let file = std::fs::File::open(&path).unwrap();
        // SAFETY: the test file is not truncated or rewritten while mapped.
        let map = unsafe { Mmap::map(&file) }.unwrap();
        assert_eq!(&map[..], payload);
        assert_eq!(map.len(), payload.len());
        assert!(!map.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = temp_path("empty");
        std::fs::File::create(&path).unwrap();
        let file = std::fs::File::open(&path).unwrap();
        // SAFETY: the test file is not truncated or rewritten while mapped.
        let map = unsafe { Mmap::map(&file) }.unwrap();
        assert!(map.is_empty());
        assert_eq!(&map[..], b"");
        let _ = std::fs::remove_file(&path);
    }

    #[cfg(unix)]
    #[test]
    fn unix_uses_kernel_mapping_for_nonempty_files() {
        let path = temp_path("kernel");
        std::fs::File::create(&path)
            .unwrap()
            .write_all(b"x")
            .unwrap();
        let file = std::fs::File::open(&path).unwrap();
        // SAFETY: the test file is not truncated or rewritten while mapped.
        let map = unsafe { Mmap::map(&file) }.unwrap();
        assert!(map.is_kernel_mapping());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn large_mapping_roundtrips() {
        let path = temp_path("large");
        let payload: Vec<u8> = (0..1usize << 16).map(|i| (i % 251) as u8).collect();
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&payload)
            .unwrap();
        let file = std::fs::File::open(&path).unwrap();
        // SAFETY: the test file is not truncated or rewritten while mapped.
        let map = unsafe { Mmap::map(&file) }.unwrap();
        assert_eq!(&map[..], &payload[..]);
        let _ = std::fs::remove_file(&path);
    }
}
