//! Pre-sized, synchronization-free result slots for parallel regions.
//!
//! The pool's regions hand out **disjoint, grain-aligned** index ranges
//! from an atomic cursor, so the chunk index `range.start / grain`
//! identifies each chunk uniquely. That makes per-chunk result collection
//! embarrassingly lock-free: pre-size one slot per chunk and let every
//! chunk write its own slot, with no mutex, no append contention and no
//! post-hoc sorting (the slots *are* in chunk order). [`ChunkSlots`] is the
//! write-once result buffer behind `drive_chunks` and the runtime engines'
//! `parallel_collect`; [`ItemSlots`] is the move-out counterpart used to
//! feed owned work items into a region.
//!
//! Cross-thread visibility of the slot writes comes from the region join
//! (a finished region happens-before `run_region` returning); the per-slot
//! written flags exist to make double writes panic instead of corrupting
//! memory and to drop initialised values if the region unwinds.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, Ordering};

/// A fixed-size array of write-once result slots, one per chunk of a
/// parallel region.
pub struct ChunkSlots<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    written: Box<[AtomicBool]>,
}

// SAFETY: every slot is written at most once (enforced by `written`) and
// only read after the parallel region has joined, so no slot is ever
// accessed concurrently from two threads.
unsafe impl<T: Send> Sync for ChunkSlots<T> {}

impl<T> ChunkSlots<T> {
    /// Creates `len` empty slots.
    pub fn new(len: usize) -> Self {
        Self {
            slots: (0..len)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
            written: (0..len).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether there are no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Writes the result of chunk `index`.
    ///
    /// # Panics
    /// Panics if the slot was already written — chunk indices of one region
    /// are unique, so a double write is a scheduling bug.
    pub fn write(&self, index: usize, value: T) {
        assert!(
            !self.written[index].swap(true, Ordering::AcqRel),
            "chunk slot {index} written twice"
        );
        // SAFETY: the swap above makes this thread the unique writer of the
        // slot, and readers only run after the region joins.
        unsafe { (*self.slots[index].get()).write(value) };
    }

    /// Consumes the slots and returns the values in chunk order.
    ///
    /// # Panics
    /// Panics if any slot was never written (the region did not cover its
    /// full iteration space).
    pub fn into_vec(self) -> Vec<T> {
        let len = self.len();
        let mut out = Vec::with_capacity(len);
        for index in 0..len {
            assert!(
                // Relaxed is enough: the region join already ordered every
                // write before this consume.
                self.written[index].swap(false, Ordering::Relaxed),
                "chunk slot {index} never written"
            );
            // SAFETY: the slot was written exactly once and the flag reset
            // above keeps `Drop` from double-dropping it.
            out.push(unsafe { (*self.slots[index].get()).assume_init_read() });
        }
        out
    }
}

impl<T> Drop for ChunkSlots<T> {
    fn drop(&mut self) {
        // Drop whatever was initialised but never consumed (the unwinding
        // path of a panicked region).
        for (slot, written) in self.slots.iter().zip(self.written.iter()) {
            if written.load(Ordering::Acquire) {
                // SAFETY: the flag says the slot holds an initialised value
                // that `into_vec` did not consume.
                unsafe { (*slot.get()).assume_init_drop() };
            }
        }
    }
}

/// A fixed array of owned work items moved out of a parallel region, one
/// take per item, without synchronization.
pub struct ItemSlots<T> {
    slots: Box<[UnsafeCell<Option<T>>]>,
}

// SAFETY: `take` requires (per its contract) that each index is taken by
// exactly one thread, which the region's disjoint ranges guarantee.
unsafe impl<T: Send> Sync for ItemSlots<T> {}

impl<T> ItemSlots<T> {
    /// Wraps the items into takeable slots.
    pub fn new(items: Vec<T>) -> Self {
        Self {
            slots: items
                .into_iter()
                .map(|i| UnsafeCell::new(Some(i)))
                .collect(),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether there are no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Moves item `index` out of its slot.
    ///
    /// # Safety
    /// Each index must be taken by at most one thread (regions guarantee
    /// this by handing out disjoint ranges); concurrent takes of the *same*
    /// index are a data race.
    // SAFETY: contract is the `# Safety` section above.
    pub unsafe fn take(&self, index: usize) -> Option<T> {
        // SAFETY: the caller guarantees exclusive access to this index (the
        // region protocol hands out disjoint ranges), so the UnsafeCell
        // dereference cannot race.
        unsafe { (*self.slots[index].get()).take() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn chunk_slots_return_values_in_order() {
        let slots = ChunkSlots::new(5);
        for i in (0..5).rev() {
            slots.write(i, i * 10);
        }
        assert_eq!(slots.into_vec(), vec![0, 10, 20, 30, 40]);
    }

    #[test]
    #[should_panic(expected = "written twice")]
    fn chunk_slots_reject_double_writes() {
        let slots = ChunkSlots::new(2);
        slots.write(0, 1u32);
        slots.write(0, 2u32);
    }

    #[test]
    #[should_panic(expected = "never written")]
    fn chunk_slots_reject_missing_writes() {
        let slots: ChunkSlots<u32> = ChunkSlots::new(2);
        slots.write(1, 7);
        let _ = slots.into_vec();
    }

    #[test]
    fn chunk_slots_drop_unconsumed_values() {
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let slots = ChunkSlots::new(3);
        slots.write(0, Counted(Arc::clone(&drops)));
        slots.write(2, Counted(Arc::clone(&drops)));
        drop(slots);
        assert_eq!(drops.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn item_slots_hand_out_each_item_once() {
        let slots = ItemSlots::new(vec!["a".to_string(), "b".to_string()]);
        assert_eq!(slots.len(), 2);
        assert!(!slots.is_empty());
        // SAFETY: single-threaded test; each index taken once (the repeat
        // take checks the None path, which is the same unique accessor).
        unsafe {
            assert_eq!(slots.take(1).as_deref(), Some("b"));
            assert_eq!(slots.take(1), None);
            assert_eq!(slots.take(0).as_deref(), Some("a"));
        }
    }
}
