//! The persistent worker pool behind every parallel region in this crate.
//!
//! The first parallel region lazily spawns a fixed set of worker threads
//! (sized by the `CHORDAL_POOL_THREADS` environment variable, falling back
//! to the number of logical CPUs). Every subsequent region is executed by
//! those same workers — no per-region thread spawning — via a small
//! work-stealing scheduler:
//!
//! * A **region** is one parallel call site: an iteration space `0..len`
//!   split into `grain`-sized chunks behind an atomic cursor (dynamic
//!   self-scheduling, so skewed chunks load-balance).
//! * Submitting a region pushes `participants - 1` *tickets* onto the
//!   per-worker queues (round-robin) and then the submitting thread joins
//!   the region itself. A ticket is an invitation to help: the thread that
//!   pops it claims chunks from the region's cursor until the region is
//!   drained.
//! * Workers pop from their own queue first and **steal** from the other
//!   workers' queues when theirs is empty, so tickets never strand behind a
//!   busy worker.
//! * The submitting thread participates too, and while waiting for the
//!   region to quiesce it drains *its own region's* remaining tickets from
//!   the queues (turning them into immediate no-ops). A thread that waits
//!   can therefore always retire the work it waits for, which keeps nested
//!   regions deadlock-free even on a single-worker pool. Helping is
//!   deliberately restricted to the joined region: executing *foreign*
//!   chunks while joining would re-enter outer region bodies on a thread
//!   that may be mid-chunk — breaking callers whose chunk bodies hold
//!   thread-local state (e.g. the batch scheduler's per-worker workspace)
//!   across a nested parallel region.
//! * Panics inside a chunk abort the region's remaining chunks, are carried
//!   across the pool, and are re-thrown on the submitting thread once every
//!   ticket has retired (a panic-propagating join, matching
//!   `std::thread::scope` semantics).
//!
//! Safety of the lifetime-erased region body rests on one invariant:
//! [`Pool::run_region`] does not return until every ticket of its region
//! has been popped and retired and no thread is executing chunks, so no
//! dereference of the body can outlive the caller's borrow.

use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Quiescence bookkeeping of one region, guarded by one mutex.
struct RegionSync {
    /// Threads currently inside [`Region::participate`].
    active: usize,
    /// Tickets pushed to the pool queues and not yet retired.
    tickets: usize,
}

/// One parallel region: an iteration space drained cooperatively by the
/// submitting thread and any pool workers that pick up its tickets.
struct Region {
    /// Next unclaimed index of the iteration space.
    cursor: AtomicUsize,
    /// Total length of the iteration space.
    len: usize,
    /// Indices claimed per scheduling step.
    grain: usize,
    /// Set when a chunk panicked: remaining chunks are abandoned.
    aborted: AtomicBool,
    /// The region body, lifetime-erased. Only dereferenced inside
    /// [`Region::participate`], which [`Pool::run_region`] outlives.
    func: FuncPtr,
    /// Participation and ticket accounting.
    sync: Mutex<RegionSync>,
    /// Signalled when the region quiesces (`active == 0 && tickets == 0`).
    quiescent: Condvar,
    /// First panic payload raised by a chunk.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// A lifetime-erased `&dyn Fn(Range<usize>)` region body.
struct FuncPtr(&'static (dyn Fn(Range<usize>) + Sync));

// SAFETY: the pointee is `Sync`, and `Pool::run_region` guarantees every
// dereference happens before the caller's borrow ends (see module docs).
unsafe impl Send for FuncPtr {}
unsafe impl Sync for FuncPtr {}

impl Region {
    /// Claims and executes chunks until the region is drained or aborted.
    /// Called by the submitter and by every thread that pops a ticket.
    fn participate(&self) {
        self.sync.lock().unwrap().active += 1;
        while !self.aborted.load(Ordering::Relaxed) {
            let start = self.cursor.fetch_add(self.grain, Ordering::Relaxed);
            if start >= self.len {
                break;
            }
            let end = (start + self.grain).min(self.len);
            let body = self.func.0;
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| body(start..end))) {
                self.aborted.store(true, Ordering::Relaxed);
                let mut slot = self.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
        }
        let mut sync = self.sync.lock().unwrap();
        sync.active -= 1;
        if sync.active == 0 && sync.tickets == 0 {
            self.quiescent.notify_all();
        }
    }

    /// Marks one ticket of this region as consumed. Every popped ticket is
    /// retired exactly once, after its `participate` call returns.
    fn retire_ticket(&self) {
        let mut sync = self.sync.lock().unwrap();
        sync.tickets -= 1;
        if sync.active == 0 && sync.tickets == 0 {
            self.quiescent.notify_all();
        }
    }
}

/// Ticket dispatch state, guarded by one mutex so pushes, pops, steals and
/// the sleep predicate can never observe each other half-applied.
struct Dispatch {
    /// One ticket queue per worker; workers steal from each other's.
    queues: Vec<Vec<Arc<Region>>>,
    /// Queued, unclaimed tickets (the condvar predicate for sleeping
    /// workers). Always equals the sum of the queue lengths.
    pending: usize,
}

/// The shared state of the persistent pool.
struct Shared {
    /// Queues + pending count under a single lock.
    dispatch: Mutex<Dispatch>,
    /// Wakes sleeping workers when tickets arrive.
    available: Condvar,
    /// Round-robin cursor for ticket placement.
    next_queue: AtomicUsize,
    /// Total OS threads ever spawned by this pool. Stays equal to the pool
    /// size after warm-up — the "no per-region spawning" observable.
    spawned: AtomicUsize,
}

impl Shared {
    /// Pops a ticket: the `home` queue first (LIFO), then steal from the
    /// others.
    fn take(&self, home: usize) -> Option<Arc<Region>> {
        let mut dispatch = self.dispatch.lock().unwrap();
        let n = dispatch.queues.len();
        for k in 0..n {
            let q = (home + k) % n;
            if let Some(ticket) = dispatch.queues[q].pop() {
                dispatch.pending -= 1;
                return Some(ticket);
            }
        }
        None
    }

    /// Pushes one ticket and wakes a worker.
    fn push(&self, ticket: Arc<Region>) {
        let mut dispatch = self.dispatch.lock().unwrap();
        let q = self.next_queue.fetch_add(1, Ordering::Relaxed) % dispatch.queues.len();
        dispatch.queues[q].push(ticket);
        dispatch.pending += 1;
        drop(dispatch);
        self.available.notify_one();
    }

    /// Removes one still-queued ticket of `region`, wherever it sits. Used
    /// by the joining thread to retire its own region's unclaimed tickets
    /// without ever executing foreign work.
    fn take_ticket_of(&self, region: &Arc<Region>) -> Option<Arc<Region>> {
        let mut dispatch = self.dispatch.lock().unwrap();
        for q in 0..dispatch.queues.len() {
            if let Some(pos) = dispatch.queues[q]
                .iter()
                .position(|t| Arc::ptr_eq(t, region))
            {
                let ticket = dispatch.queues[q].swap_remove(pos);
                dispatch.pending -= 1;
                return Some(ticket);
            }
        }
        None
    }

    /// The worker main loop: pop or steal a ticket, drain its region, sleep
    /// when no work is queued.
    fn worker_loop(&self, home: usize) {
        loop {
            if let Some(region) = self.take(home) {
                region.participate();
                region.retire_ticket();
                continue;
            }
            let mut dispatch = self.dispatch.lock().unwrap();
            while dispatch.pending == 0 {
                dispatch = self.available.wait(dispatch).unwrap();
            }
            // Tickets arrived; retry the pop/steal cycle without the lock.
        }
    }
}

/// Handle to the lazily-spawned persistent pool.
pub(crate) struct Pool {
    shared: Arc<Shared>,
}

impl Pool {
    fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            dispatch: Mutex::new(Dispatch {
                queues: (0..workers).map(|_| Vec::new()).collect(),
                pending: 0,
            }),
            available: Condvar::new(),
            next_queue: AtomicUsize::new(0),
            spawned: AtomicUsize::new(0),
        });
        for home in 0..workers {
            let shared = Arc::clone(&shared);
            shared.spawned.fetch_add(1, Ordering::Relaxed);
            std::thread::Builder::new()
                .name(format!("chordal-pool-{home}"))
                .spawn(move || shared.worker_loop(home))
                .expect("failed to spawn pool worker");
        }
        Self { shared }
    }

    /// The process-wide pool, spawned on first use.
    pub(crate) fn global() -> &'static Pool {
        POOL.get_or_init(|| Pool::new(configured_size()))
    }

    /// Runs `f` over `grain`-sized chunks of `0..len`, using at most
    /// `parallelism` threads (the caller plus up to `parallelism - 1` pool
    /// workers). Blocks until the region quiesces; re-throws the first chunk
    /// panic on the calling thread.
    pub(crate) fn run_region<F>(&self, len: usize, grain: usize, parallelism: usize, f: F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        if len == 0 {
            return;
        }
        let grain = grain.max(1);
        let chunks = len.div_ceil(grain);
        let participants = parallelism.max(1).min(chunks);
        if participants <= 1 {
            f(0..len);
            return;
        }
        let body: &(dyn Fn(Range<usize>) + Sync) = &f;
        // SAFETY: this function does not return until the region quiesces
        // (every ticket popped and retired, no thread inside `participate`),
        // so the erased borrow outlives every dereference.
        let body: &'static (dyn Fn(Range<usize>) + Sync) = unsafe { std::mem::transmute(body) };
        let region = Arc::new(Region {
            cursor: AtomicUsize::new(0),
            len,
            grain,
            aborted: AtomicBool::new(false),
            func: FuncPtr(body),
            sync: Mutex::new(RegionSync {
                active: 0,
                tickets: participants - 1,
            }),
            quiescent: Condvar::new(),
            panic: Mutex::new(None),
        });
        for _ in 0..participants - 1 {
            self.shared.push(Arc::clone(&region));
        }
        region.participate();
        // Join: first retire this region's still-queued tickets (turning
        // them into no-ops — the cursor is already drained or aborted once
        // `participate` returns, so this is bookkeeping, not execution),
        // then wait for in-flight participants on other threads. Only
        // tickets of *this* region are touched; see the module docs for why
        // the joiner must never execute foreign chunks.
        while let Some(ticket) = self.shared.take_ticket_of(&region) {
            ticket.participate();
            ticket.retire_ticket();
        }
        let sync = region.sync.lock().unwrap();
        let sync = region
            .quiescent
            .wait_while(sync, |s| s.active > 0 || s.tickets > 0)
            .unwrap();
        drop(sync);
        let panicked = region.panic.lock().unwrap().take();
        if let Some(payload) = panicked {
            resume_unwind(payload);
        }
    }

    /// Total OS threads this pool has ever spawned.
    pub(crate) fn spawned_threads(&self) -> usize {
        self.shared.spawned.load(Ordering::Relaxed)
    }
}

/// The lazily-initialised process-wide pool.
static POOL: OnceLock<Pool> = OnceLock::new();

/// Total OS threads spawned by the shared pool so far (zero before the
/// first parallel region forces initialisation).
pub(crate) fn spawned_so_far() -> usize {
    POOL.get().map(Pool::spawned_threads).unwrap_or(0)
}

/// Pool size: `CHORDAL_POOL_THREADS` when set to a positive integer,
/// otherwise the number of logical CPUs. Computed once, without spawning
/// any threads (the pool itself spawns on first region).
pub(crate) fn configured_size() -> usize {
    static SIZE: OnceLock<usize> = OnceLock::new();
    *SIZE.get_or_init(|| {
        std::env::var("CHORDAL_POOL_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}
