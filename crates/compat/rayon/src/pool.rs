//! The persistent worker pool behind every parallel region in this crate.
//!
//! The first parallel region lazily spawns a fixed set of worker threads
//! (sized by the `CHORDAL_POOL_THREADS` environment variable, falling back
//! to the number of logical CPUs). Every subsequent region is executed by
//! those same workers — no per-region thread spawning — via a **lock-free**
//! work-stealing scheduler:
//!
//! * A **region** is one parallel call site: an iteration space `0..len`
//!   split into `grain`-sized chunks behind an atomic cursor (dynamic
//!   self-scheduling, so skewed chunks load-balance).
//! * Submitting a region publishes `participants - 1` *tickets* and then
//!   the submitting thread joins the region itself. A ticket is an
//!   **invitation** to help: the thread that pops it claims chunks from the
//!   region's cursor until the region is drained. Tickets travel through
//!   per-worker [Chase–Lev deques](crate::deque) — a worker submitting a
//!   nested region pushes to its own deque (LIFO for the owner, cheap and
//!   cache-warm), external threads submit through a bounded lock-free MPMC
//!   injector. Workers pop their own deque first, then the injector, then
//!   **steal** (FIFO, via CAS) from the other workers' deques. No mutex is
//!   taken anywhere on the dispatch path.
//! * Because a ticket is only an invitation, a full queue simply drops it
//!   (the submitter keeps one fewer helper) and a *stale* ticket — one
//!   popped after its region already finished — is a no-op. Region
//!   accounting is two atomic counters: `pending` (invitations not yet
//!   claimed) and `active` (threads executing chunks). A helper *claims* an
//!   invitation by incrementing `active` **before** decrementing `pending`,
//!   so the joiner can never observe both counters at zero while a claimed
//!   helper has yet to start.
//! * The submitting thread participates too; when its share of the cursor
//!   is drained it **cancels** the remaining invitations (one atomic swap
//!   of `pending` to zero — the replacement for PR 2's lock-guarded ticket
//!   removal) and then waits, spinning briefly and parking, until `active`
//!   reaches zero. The last finishing helper unparks it. A joining thread
//!   never executes *foreign* chunks — the region-restricted-helping rule
//!   that keeps chunk bodies free to hold thread-local state across nested
//!   regions — and never waits on anything but actively-running chunks, so
//!   nested regions cannot deadlock even on a single-worker pool.
//! * Panics inside a chunk abort the region's remaining chunks, are carried
//!   across the pool, and are re-thrown on the submitting thread once every
//!   active participant has retired (a panic-propagating join, matching
//!   `std::thread::scope` semantics). The panic payload slot is the one
//!   remaining mutex and it is only ever touched on the panic path.
//!
//! Safety of the lifetime-erased region body rests on one invariant:
//! [`Pool::run_region`] does not return until `pending` has been cancelled
//! and `active` has reached zero, and a helper only dereferences the body
//! after successfully claiming a `pending` invitation — so no dereference
//! of the body can outlive the caller's borrow.
//!
//! The pool also keeps [scheduling counters](PoolStats) (regions
//! submitted, tickets published, steals) and can
//! [calibrate](estimated_overhead_ns) the per-region dispatch overhead;
//! the adaptive batch scheduler in `chordal-core` uses that sample to
//! decide between graph fan-out and intra-graph parallelism.

use crate::deque::{ChaseLev, Injector, Steal};
use std::cell::Cell;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

// Under `cfg(chordal_model)` the atomics, mutex and thread handles come
// from the chordal-checker facade so the model tests below can explore the
// region join protocol deterministically (see docs/concurrency.md).
#[cfg(not(chordal_model))]
use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
#[cfg(not(chordal_model))]
use std::sync::Mutex;
#[cfg(not(chordal_model))]
use std::thread;
#[cfg(not(chordal_model))]
use std::thread::Thread;

#[cfg(chordal_model)]
use chordal_checker::sync::{fence, AtomicBool, AtomicU64, AtomicUsize, Mutex, Ordering};
#[cfg(chordal_model)]
use chordal_checker::thread;
#[cfg(chordal_model)]
use chordal_checker::thread::Thread;

/// Capacity of each worker's Chase–Lev deque (tickets, not chunks).
const DEQUE_CAPACITY: usize = 256;

/// Capacity of the external-submission injector queue.
const INJECTOR_CAPACITY: usize = 1024;

/// Spin iterations before a joining thread parks.
#[cfg(not(chordal_model))]
const JOIN_SPINS: u32 = 128;
/// Under the model checker every spin iteration is a schedule point, so the
/// joiner parks almost immediately to keep the state space tractable.
#[cfg(chordal_model)]
const JOIN_SPINS: u32 = 1;

/// Backstop park timeout for idle workers; wake-ups normally arrive via
/// `unpark` from the push path, this only bounds the cost of a lost race.
const WORKER_PARK: Duration = Duration::from_millis(50);

/// Backstop park timeout for a joining thread waiting on active helpers.
const JOIN_PARK: Duration = Duration::from_micros(200);

thread_local! {
    /// Index of this thread in the pool's worker array; `usize::MAX` for
    /// threads that are not pool workers.
    static WORKER_INDEX: Cell<usize> = const { Cell::new(usize::MAX) };

    /// Parallel regions *this thread* has submitted. Unlike the shared
    /// [`PoolStats::regions`] counter, a delta of this value cannot absorb
    /// regions that other threads submitted concurrently — schedulers use
    /// it to attribute region counts to one extraction without cross-talk.
    static LOCAL_REGIONS: Cell<u64> = const { Cell::new(0) };
}

/// One parallel region: an iteration space drained cooperatively by the
/// submitting thread and any pool workers that claim its invitations.
struct Region {
    /// Next unclaimed index of the iteration space.
    cursor: AtomicUsize,
    /// Total length of the iteration space.
    len: usize,
    /// Indices claimed per scheduling step.
    grain: usize,
    /// Set when a chunk panicked: remaining chunks are abandoned.
    aborted: AtomicBool,
    /// The region body, lifetime-erased to a raw pointer. Only dereferenced
    /// by a thread that claimed a `pending` invitation (or by the submitter
    /// itself), both of which [`Pool::run_region`] outlives. A raw pointer
    /// (not a reference) because cancelled tickets keep their `Region`
    /// alive in the queues after `run_region` returns — the body is dead by
    /// then, and a dangling pointer that is never dereferenced is sound
    /// where a dangling reference would not be.
    func: FuncPtr,
    /// Invitations published and not yet claimed. The joiner swaps this to
    /// zero when it finishes participating; stale tickets then no-op.
    pending: AtomicUsize,
    /// Threads executing (or committed to executing) chunks, including the
    /// submitter.
    active: AtomicUsize,
    /// The submitting thread, unparked when the region quiesces.
    joiner: Thread,
    /// First panic payload raised by a chunk (cold path only).
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// A lifetime-erased `&dyn Fn(Range<usize>)` region body, stored raw.
struct FuncPtr(*const (dyn Fn(Range<usize>) + Sync));

// `Pool::run_region` guarantees every dereference happens before the
// caller's borrow ends (see module docs); after that the pointer may
// dangle inside stale tickets but is never dereferenced again (the
// `pending == 0` claim guard).
// SAFETY: the pointee is `Sync` and the liveness argument above bounds
// every cross-thread dereference inside the caller's borrow.
unsafe impl Send for FuncPtr {}
// SAFETY: shared access is read-only (the pointer is only ever read and
// dereferenced to a `Sync` pointee); see the liveness argument on Send.
unsafe impl Sync for FuncPtr {}

impl Region {
    /// Claims and executes chunks until the region is drained or aborted.
    /// The caller must already be counted in `active`.
    fn execute_chunks(&self) {
        while !self.aborted.load(Ordering::Relaxed) {
            let start = self.cursor.fetch_add(self.grain, Ordering::Relaxed);
            if start >= self.len {
                break;
            }
            let end = (start + self.grain).min(self.len);
            // SAFETY: reaching a chunk means this thread claimed a
            // `pending` invitation (or is the submitter), so `run_region`
            // is still on the submitter's stack and the body is alive.
            let body = unsafe { &*self.func.0 };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| body(start..end))) {
                self.aborted.store(true, Ordering::Relaxed);
                let mut slot = self.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
        }
    }

    /// Retires one participation; the last one out wakes the joiner.
    fn finish(&self) {
        if self.active.fetch_sub(1, Ordering::SeqCst) == 1
            && self.pending.load(Ordering::SeqCst) == 0
        {
            self.joiner.unpark();
        }
    }

    /// Entry point for a popped ticket: claim one invitation and help, or
    /// no-op if the region was already cancelled.
    ///
    /// The order is load-bearing: `active` is incremented *before* the
    /// `pending` claim, so once the joiner has cancelled `pending` and seen
    /// `active == 0` (both SeqCst), no helper can still be about to
    /// dereference the body.
    fn help(&self) {
        self.active.fetch_add(1, Ordering::SeqCst);
        let mut invitations = self.pending.load(Ordering::SeqCst);
        loop {
            if invitations == 0 {
                // Cancelled or fully claimed: stale ticket, nothing to do.
                self.finish();
                return;
            }
            match self.pending.compare_exchange_weak(
                invitations,
                invitations - 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => break,
                Err(current) => invitations = current,
            }
        }
        self.execute_chunks();
        self.finish();
    }
}

/// One pool worker's dispatch state.
struct Worker {
    /// This worker's own ticket deque (owner pushes/pops, others steal).
    deque: ChaseLev,
    /// Set while the worker is parked (the push path's wake predicate).
    sleeping: AtomicBool,
    /// The worker's thread handle, registered when its loop starts.
    handle: OnceLock<Thread>,
}

/// Monotonic scheduling counters of the shared pool.
///
/// All counters start at zero when the process starts and only ever grow;
/// callers interested in one workload's behaviour take a delta around it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Parallel regions submitted to the pool (excludes inline serial runs).
    pub regions: u64,
    /// Help-invitation tickets successfully published to the queues.
    pub tickets: u64,
    /// Tickets taken from a *foreign* worker's deque (work stealing events).
    pub steals: u64,
    /// Help-invitation tickets that could not be published because every
    /// queue was full. A dropped ticket degrades a region to fewer helpers
    /// (the submitter still drains the cursor, so correctness is
    /// unaffected) — this counter is the only trace saturation leaves.
    pub tickets_dropped: u64,
}

/// The shared state of the persistent pool.
struct Shared {
    /// One dispatch slot per worker.
    workers: Box<[Worker]>,
    /// Lock-free MPMC queue for submissions from non-worker threads.
    injector: Injector,
    /// Total OS threads ever spawned by this pool. Stays equal to the pool
    /// size after warm-up — the "no per-region spawning" observable.
    spawned: AtomicUsize,
    /// Parallel regions submitted.
    regions: AtomicU64,
    /// Tickets successfully published.
    tickets: AtomicU64,
    /// Foreign-deque steals.
    steals: AtomicU64,
    /// Tickets dropped because the deque and injector were both full.
    tickets_dropped: AtomicU64,
}

impl Shared {
    /// Converts a ticket into its queue representation.
    fn into_raw(ticket: Arc<Region>) -> *mut () {
        Arc::into_raw(ticket) as *mut ()
    }

    /// Recovers a ticket from its queue representation.
    //
    // SAFETY: callers must pass a pointer produced by `Shared::into_raw`
    // and consume it exactly once (the queues surface each ticket once).
    unsafe fn from_raw(raw: *mut ()) -> Arc<Region> {
        // SAFETY: per this function's contract, `raw` was produced by
        // `Shared::into_raw` (so it is a live `Arc<Region>` pointer) and is
        // consumed exactly once.
        unsafe { Arc::from_raw(raw as *const Region) }
    }

    /// Publishes one ticket and wakes a worker. Returns `false` when every
    /// queue was full — the invitation is dropped, which costs parallelism
    /// but never correctness (the submitter drains the cursor regardless).
    fn push(&self, ticket: Arc<Region>) -> bool {
        let raw = Self::into_raw(ticket);
        let home = WORKER_INDEX.with(Cell::get);
        let result = if home != usize::MAX {
            // Worker thread: own deque first (LIFO locality), injector as
            // the overflow path.
            self.workers[home]
                .deque
                .push(raw)
                .or_else(|raw| self.injector.push(raw))
        } else {
            self.injector.push(raw)
        };
        match result {
            Ok(()) => {
                self.tickets.fetch_add(1, Ordering::Relaxed);
                // Store-load barrier of the sleep protocol: the ticket must
                // be visible before we read the sleep flags, or a worker
                // checking for work just before our push could park unseen.
                fence(Ordering::SeqCst);
                self.wake_one();
                true
            }
            Err(raw) => {
                self.tickets_dropped.fetch_add(1, Ordering::Relaxed);
                // SAFETY: `raw` was created above and never enqueued.
                drop(unsafe { Self::from_raw(raw) });
                false
            }
        }
    }

    /// Unparks one sleeping worker, if any.
    fn wake_one(&self) {
        for worker in self.workers.iter() {
            if worker.sleeping.load(Ordering::SeqCst)
                && worker.sleeping.swap(false, Ordering::SeqCst)
            {
                if let Some(handle) = worker.handle.get() {
                    handle.unpark();
                }
                return;
            }
        }
    }

    /// Whether any queue appears to hold a ticket (racy hint for the sleep
    /// predicate; the park timeout bounds the cost of a stale answer).
    fn has_work(&self) -> bool {
        !self.injector.is_empty() || self.workers.iter().any(|w| !w.deque.is_empty())
    }

    /// Pops a ticket: the own deque first (LIFO), then the injector, then
    /// steals from the other workers (FIFO).
    fn take(&self, home: usize) -> Option<Arc<Region>> {
        if let Some(raw) = self.workers[home].deque.pop() {
            // SAFETY: queue values are uniquely-owned `into_raw` tickets.
            return Some(unsafe { Self::from_raw(raw) });
        }
        if let Some(raw) = self.injector.pop() {
            // SAFETY: as above.
            return Some(unsafe { Self::from_raw(raw) });
        }
        let n = self.workers.len();
        for k in 1..n {
            let victim = &self.workers[(home + k) % n];
            loop {
                match victim.deque.steal() {
                    Steal::Taken(raw) => {
                        self.steals.fetch_add(1, Ordering::Relaxed);
                        // SAFETY: as above.
                        return Some(unsafe { Self::from_raw(raw) });
                    }
                    Steal::Retry => std::hint::spin_loop(),
                    Steal::Empty => break,
                }
            }
        }
        None
    }

    /// The worker main loop: pop or steal a ticket, help its region, park
    /// when no work is queued.
    fn worker_loop(&self, index: usize) {
        WORKER_INDEX.with(|cell| cell.set(index));
        let me = &self.workers[index];
        let _ = me.handle.set(thread::current());
        loop {
            if let Some(region) = self.take(index) {
                region.help();
                continue;
            }
            // Sleep protocol (Dekker-style): publish the sleeping flag,
            // then re-check the queues. A pusher either sees the flag (and
            // unparks us) or we see its ticket here.
            me.sleeping.store(true, Ordering::SeqCst);
            fence(Ordering::SeqCst);
            if self.has_work() {
                me.sleeping.store(false, Ordering::SeqCst);
                continue;
            }
            thread::park_timeout(WORKER_PARK);
            me.sleeping.store(false, Ordering::SeqCst);
        }
    }
}

/// Handle to the lazily-spawned persistent pool.
pub(crate) struct Pool {
    shared: Arc<Shared>,
}

impl Pool {
    fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            workers: (0..workers)
                .map(|_| Worker {
                    deque: ChaseLev::new(DEQUE_CAPACITY),
                    sleeping: AtomicBool::new(false),
                    handle: OnceLock::new(),
                })
                .collect(),
            injector: Injector::new(INJECTOR_CAPACITY),
            spawned: AtomicUsize::new(0),
            regions: AtomicU64::new(0),
            tickets: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            tickets_dropped: AtomicU64::new(0),
        });
        for index in 0..workers {
            let shared = Arc::clone(&shared);
            shared.spawned.fetch_add(1, Ordering::Relaxed);
            thread::Builder::new()
                .name(format!("chordal-pool-{index}"))
                .spawn(move || shared.worker_loop(index))
                .expect("failed to spawn pool worker");
        }
        Self { shared }
    }

    /// The process-wide pool, spawned on first use.
    pub(crate) fn global() -> &'static Pool {
        POOL.get_or_init(|| Pool::new(configured_size()))
    }

    /// Runs `f` over `grain`-sized chunks of `0..len`, using at most
    /// `parallelism` threads (the caller plus up to `parallelism - 1` pool
    /// workers). Blocks until the region quiesces; re-throws the first chunk
    /// panic on the calling thread.
    pub(crate) fn run_region<F>(&self, len: usize, grain: usize, parallelism: usize, f: F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        if len == 0 {
            return;
        }
        let grain = grain.max(1);
        let chunks = len.div_ceil(grain);
        // Cap at the pool size plus the caller: invitations beyond the
        // worker count can never be claimed concurrently, so publishing
        // them would be pure dispatch waste (push + wake per ticket).
        let participants = parallelism
            .max(1)
            .min(chunks)
            .min(self.shared.workers.len() + 1);
        if participants <= 1 {
            f(0..len);
            return;
        }
        let body: &(dyn Fn(Range<usize>) + Sync) = &f;
        // Lifetime erasure to a raw wide pointer (same layout). This
        // function does not return until the region quiesces (pending
        // invitations cancelled, no thread active in the region), so the
        // pointer outlives every dereference; cancelled tickets may keep it
        // around longer, but they never dereference it (`Region::help`).
        // SAFETY: same-layout transmute; liveness argument above.
        let body: *const (dyn Fn(Range<usize>) + Sync) = unsafe { std::mem::transmute(body) };
        let region = Arc::new(Region {
            cursor: AtomicUsize::new(0),
            len,
            grain,
            aborted: AtomicBool::new(false),
            func: FuncPtr(body),
            pending: AtomicUsize::new(participants - 1),
            // The submitter counts as active from the start, so helpers'
            // quiescence checks cannot fire before it has joined.
            active: AtomicUsize::new(1),
            joiner: thread::current(),
            panic: Mutex::new(None),
        });
        self.shared.regions.fetch_add(1, Ordering::Relaxed);
        LOCAL_REGIONS.with(|c| c.set(c.get() + 1));
        for _ in 0..participants - 1 {
            if !self.shared.push(Arc::clone(&region)) {
                // Queues full: withdraw the invitation we failed to publish.
                region.pending.fetch_sub(1, Ordering::SeqCst);
            }
        }
        region.execute_chunks();
        // Join. Cancel every unclaimed invitation — stale tickets in the
        // queues become no-ops (the cursor is already drained or aborted
        // once `execute_chunks` returns, so cancelled helpers lose nothing)
        // — then wait for in-flight helpers to retire. Only actively
        // running chunks are ever waited on, which is what keeps nested
        // regions deadlock-free on any pool size.
        region.pending.swap(0, Ordering::SeqCst);
        region.active.fetch_sub(1, Ordering::SeqCst);
        let mut spins = 0u32;
        while region.active.load(Ordering::SeqCst) > 0 {
            if spins < JOIN_SPINS {
                spins += 1;
                std::hint::spin_loop();
            } else {
                thread::park_timeout(JOIN_PARK);
            }
        }
        if region.aborted.load(Ordering::Relaxed) {
            let panicked = region.panic.lock().unwrap().take();
            if let Some(payload) = panicked {
                resume_unwind(payload);
            }
        }
    }

    /// Total OS threads this pool has ever spawned.
    pub(crate) fn spawned_threads(&self) -> usize {
        self.shared.spawned.load(Ordering::Relaxed)
    }

    /// Current scheduling counters.
    pub(crate) fn stats(&self) -> PoolStats {
        PoolStats {
            regions: self.shared.regions.load(Ordering::Relaxed),
            tickets: self.shared.tickets.load(Ordering::Relaxed),
            steals: self.shared.steals.load(Ordering::Relaxed),
            tickets_dropped: self.shared.tickets_dropped.load(Ordering::Relaxed),
        }
    }

    /// Number of pool workers currently parked with no work (a racy,
    /// constant-time hint: each worker publishes a `sleeping` flag before it
    /// parks). Schedulers use this to detect spare capacity — e.g. the batch
    /// rebalancer promotes fan-out tail work to intra-graph parallelism when
    /// idle workers could help with it.
    pub(crate) fn idle_workers(&self) -> usize {
        self.shared
            .workers
            .iter()
            .filter(|w| w.sleeping.load(Ordering::Relaxed))
            .count()
    }
}

/// The lazily-initialised process-wide pool.
static POOL: OnceLock<Pool> = OnceLock::new();

/// Total OS threads spawned by the shared pool so far (zero before the
/// first parallel region forces initialisation).
pub(crate) fn spawned_so_far() -> usize {
    POOL.get().map(Pool::spawned_threads).unwrap_or(0)
}

/// Scheduling counters of the shared pool so far (all zero before the first
/// parallel region forces initialisation).
pub(crate) fn stats_so_far() -> PoolStats {
    POOL.get().map(Pool::stats).unwrap_or_default()
}

/// Measured cost of dispatching and joining one (near-empty) parallel
/// region with `parallelism` participants on this machine, in nanoseconds.
///
/// Calibrated on first call *per participant count* by timing a burst of
/// `parallelism`-chunk regions on the shared pool, and memoised per count
/// for the process lifetime. Keying the sample by participant count is
/// load-bearing: a region with more participants publishes more tickets and
/// pays more wake-ups, so a session whose engine runs 8 threads must not
/// reuse the sample a 2-thread session happened to take first (the
/// stale-calibration bug). The sample covers ticket publication, the worker
/// wake-ups, the cursor handshake and the park/unpark join.
///
/// `parallelism` is clamped to `[2, pool size + 1]` — the range of
/// participant counts [`Pool::run_region`] can actually produce — so
/// distinct requested thread counts that resolve to the same participant
/// count share one sample.
pub(crate) fn estimated_overhead_ns(parallelism: usize) -> u64 {
    static SAMPLES: OnceLock<Mutex<std::collections::HashMap<usize, u64>>> = OnceLock::new();
    let key = parallelism.clamp(2, configured_size() + 1);
    let samples = SAMPLES.get_or_init(|| Mutex::new(std::collections::HashMap::new()));
    if let Some(&sample) = samples.lock().unwrap().get(&key) {
        return sample;
    }
    // Calibrate outside the lock: the burst below submits pool regions, and
    // a region body must never be able to re-enter this path while the map
    // is held.
    let pool = Pool::global();
    // Warm up: spawn the workers and fault in the code paths.
    for _ in 0..8 {
        pool.run_region(key, 1, key, |_| {});
    }
    let rounds = 64u32;
    let start = std::time::Instant::now();
    for _ in 0..rounds {
        pool.run_region(key, 1, key, |_| {});
    }
    let sample = (start.elapsed().as_nanos() as u64 / u64::from(rounds)).max(1);
    // First writer wins, so the memoised value is stable even when two
    // threads calibrate the same key concurrently.
    *samples.lock().unwrap().entry(key).or_insert(sample)
}

/// Idle-worker count of the shared pool (zero before the first region
/// spawns it — an unspawned pool has no parked workers to recruit *now*,
/// and the first region's tickets will wake them anyway).
pub(crate) fn idle_so_far() -> usize {
    POOL.get().map(Pool::idle_workers).unwrap_or(0)
}

/// Monotonic count of parallel regions submitted by the calling thread.
pub(crate) fn local_regions_submitted() -> u64 {
    LOCAL_REGIONS.with(Cell::get)
}

/// Pool size: `CHORDAL_POOL_THREADS` when set to a positive integer,
/// otherwise the number of logical CPUs. Computed once, without spawning
/// any threads (the pool itself spawns on first region).
pub(crate) fn configured_size() -> usize {
    static SIZE: OnceLock<usize> = OnceLock::new();
    *SIZE.get_or_init(|| {
        std::env::var("CHORDAL_POOL_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

#[cfg(all(test, not(chordal_model)))]
mod tests {
    use super::*;

    #[test]
    fn counters_grow_with_submitted_regions() {
        let pool = Pool::global();
        let before = pool.stats();
        for _ in 0..16 {
            pool.run_region(64, 1, 2, |_| {});
        }
        let after = pool.stats();
        assert!(
            after.regions >= before.regions + 16,
            "regions {} -> {}",
            before.regions,
            after.regions
        );
        assert!(after.tickets >= before.tickets, "tickets must not shrink");
        assert!(after.steals >= before.steals, "steals must not shrink");
    }

    #[test]
    fn local_region_counter_ignores_other_threads() {
        let pool = Pool::global();
        let before = local_regions_submitted();
        for _ in 0..5 {
            pool.run_region(64, 8, 2, |_| {});
        }
        assert_eq!(
            local_regions_submitted(),
            before + 5,
            "own submissions must count exactly"
        );
        let mine = local_regions_submitted();
        std::thread::scope(|s| {
            s.spawn(|| {
                for _ in 0..7 {
                    pool.run_region(64, 8, 2, |_| {});
                }
                assert!(local_regions_submitted() >= 7);
            });
        });
        assert_eq!(
            local_regions_submitted(),
            mine,
            "another thread's submissions must not leak into this thread's counter"
        );
    }

    #[test]
    fn overhead_estimate_is_positive_and_memoised_per_parallelism() {
        // Regression test for the stale-calibration bug: the sample is
        // keyed by participant count, so a 2-participant calibration and a
        // wider one are taken (and memoised) independently — a session
        // running a different thread count can no longer inherit whichever
        // sample happened to be taken first.
        let narrow = estimated_overhead_ns(2);
        assert!(narrow >= 1);
        assert_eq!(
            narrow,
            estimated_overhead_ns(2),
            "sample must be memoised per key"
        );
        let wide_key = configured_size() + 1;
        let wide = estimated_overhead_ns(wide_key);
        assert!(wide >= 1);
        assert_eq!(
            wide,
            estimated_overhead_ns(wide_key),
            "each key memoises its own sample"
        );
        // Out-of-range requests clamp onto the calibrated range instead of
        // growing the table without bound.
        assert_eq!(estimated_overhead_ns(0), narrow);
        assert_eq!(estimated_overhead_ns(usize::MAX), wide);
    }

    #[test]
    fn full_queues_count_dropped_tickets_and_stay_correct() {
        // A private one-worker pool whose worker is parked inside a gated
        // region: every stale ticket the main thread leaves behind then
        // accumulates in the injector until it saturates, which must (a)
        // never affect results and (b) leave a trace in `tickets_dropped`.
        let pool = Pool::new(1);
        let gate = Arc::new(AtomicBool::new(false));
        let entered = Arc::new(AtomicUsize::new(0));
        let blocker = {
            let shared = Arc::clone(&pool.shared);
            let gate = Arc::clone(&gate);
            let entered = Arc::clone(&entered);
            std::thread::spawn(move || {
                let pool = Pool { shared };
                // Two chunks, two participants: the submitter blocks on one
                // chunk, the worker claims the invitation and blocks on the
                // other.
                pool.run_region(2, 1, 2, |_| {
                    entered.fetch_add(1, Ordering::SeqCst);
                    while !gate.load(Ordering::SeqCst) {
                        std::thread::park_timeout(Duration::from_micros(50));
                    }
                });
            })
        };
        while entered.load(Ordering::SeqCst) < 2 {
            std::hint::spin_loop();
        }
        // Both the worker and the blocker thread are now pinned inside the
        // gated region; nothing can drain the injector.
        let before = pool.stats();
        let total = AtomicUsize::new(0);
        let floods = INJECTOR_CAPACITY + 200;
        for _ in 0..floods {
            // Each submission publishes one invitation; the submitter
            // drains both chunks itself and cancels the invitation, which
            // stays in the injector as a stale ticket.
            pool.run_region(2, 1, 2, |r| {
                total.fetch_add(r.len(), Ordering::Relaxed);
            });
        }
        let after = pool.stats();
        assert_eq!(
            total.into_inner(),
            floods * 2,
            "every flooded region must complete exactly despite saturation"
        );
        assert!(
            after.tickets_dropped > before.tickets_dropped,
            "saturating the injector must be visible in tickets_dropped \
             ({} -> {})",
            before.tickets_dropped,
            after.tickets_dropped
        );
        gate.store(true, Ordering::SeqCst);
        blocker.join().unwrap();
        // The pool still runs work (the worker drains the stale backlog as
        // no-ops).
        let sum = AtomicUsize::new(0);
        pool.run_region(64, 4, 2, |r| {
            sum.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(sum.into_inner(), 64);
    }

    #[test]
    fn concurrent_external_submitters_all_complete() {
        // Many non-worker threads submitting regions at once exercises the
        // injector path and the wake protocol under contention.
        let pool = Pool::global();
        let totals: Vec<usize> = std::thread::scope(|s| {
            (0..6usize)
                .map(|t| {
                    s.spawn(move || {
                        let sum = AtomicUsize::new(0);
                        for round in 0..24 {
                            pool.run_region(500 + t + round, 16, 3, |r| {
                                sum.fetch_add(r.len(), Ordering::Relaxed);
                            });
                        }
                        sum.into_inner()
                    })
                })
                .map(|h| h.join().unwrap())
                .collect()
        });
        for (t, total) in totals.into_iter().enumerate() {
            let expected: usize = (0..24).map(|round| 500 + t + round).sum();
            assert_eq!(total, expected, "submitter {t}");
        }
    }

    #[test]
    fn panics_under_contention_reach_their_own_submitter() {
        // Several concurrent submitters, half of them panicking: each panic
        // must surface on its own submitting thread and leave the others
        // (and the pool) intact.
        let pool = Pool::global();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4usize)
                .map(|t| {
                    s.spawn(move || {
                        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                            pool.run_region(2_000, 8, 3, |r| {
                                if t % 2 == 0 && r.contains(&1_111) {
                                    panic!("contended boom {t}");
                                }
                            });
                        }));
                        (t, outcome)
                    })
                })
                .collect();
            for handle in handles {
                let (t, outcome) = handle.join().unwrap();
                if t % 2 == 0 {
                    let payload = outcome.expect_err("even submitters must observe their panic");
                    let message = payload
                        .downcast_ref::<String>()
                        .cloned()
                        .unwrap_or_default();
                    assert!(
                        message.contains(&format!("contended boom {t}")),
                        "wrong payload for submitter {t}: {message}"
                    );
                } else {
                    outcome.expect("odd submitters must complete cleanly");
                }
            }
        });
        // The pool still runs work afterwards.
        let sum = AtomicUsize::new(0);
        pool.run_region(100, 4, 2, |r| {
            sum.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(sum.into_inner(), 100);
    }
}

/// Model-checker tests for the region join protocol; compiled only under
/// `RUSTFLAGS="--cfg chordal_model"`. They construct `Region` directly (the
/// full `Pool` spawns forever-looping workers, which a finite exploration cannot
/// model) and exhaustively explore the claim/cancel/quiesce handshake.
#[cfg(all(test, chordal_model))]
mod model_tests {
    use super::*;
    use chordal_checker::model;

    /// Runs the submitter side of `run_region`'s join: cancel unclaimed
    /// invitations, retire, and wait for in-flight helpers.
    fn join(region: &Region) {
        region.pending.swap(0, Ordering::SeqCst);
        region.active.fetch_sub(1, Ordering::SeqCst);
        let mut spins = 0u32;
        while region.active.load(Ordering::SeqCst) > 0 {
            if spins < JOIN_SPINS {
                spins += 1;
                std::hint::spin_loop();
            } else {
                thread::park_timeout(JOIN_PARK);
            }
        }
    }

    fn make_region(len: usize, pending: usize, body: &(dyn Fn(Range<usize>) + Sync)) -> Region {
        // SAFETY: same lifetime erasure as `run_region`; each test joins the
        // region (and its helper thread) before `body` goes out of scope.
        let body: *const (dyn Fn(Range<usize>) + Sync) = unsafe { std::mem::transmute(body) };
        Region {
            cursor: AtomicUsize::new(0),
            len,
            grain: 1,
            aborted: AtomicBool::new(false),
            func: FuncPtr(body),
            pending: AtomicUsize::new(pending),
            active: AtomicUsize::new(1),
            joiner: thread::current(),
            panic: Mutex::new(None),
        }
    }

    /// The load-bearing claim order (`active` up *before* the `pending`
    /// claim, both SeqCst): once the joiner has cancelled `pending` and
    /// observed `active == 0`, no helper may still be about to dereference
    /// the body. The body asserts it never runs after quiescence, and the
    /// chunk accounting must be exact in every interleaving.
    #[test]
    fn region_join_quiesces_exactly() {
        model(|| {
            let hits = Arc::new(AtomicUsize::new(0));
            let retired = Arc::new(AtomicBool::new(false));
            let (h2, r2) = (Arc::clone(&hits), Arc::clone(&retired));
            let body = move |r: Range<usize>| {
                assert!(
                    !r2.load(Ordering::SeqCst),
                    "chunk body ran after the joiner observed quiescence"
                );
                h2.fetch_add(r.len(), Ordering::SeqCst);
            };
            let region = Arc::new(make_region(2, 1, &body));
            let helper = {
                let region = Arc::clone(&region);
                thread::spawn(move || region.help())
            };
            region.execute_chunks();
            join(&region);
            retired.store(true, Ordering::SeqCst);
            assert_eq!(hits.load(Ordering::SeqCst), 2, "every chunk exactly once");
            helper.join().unwrap();
        });
    }

    /// A panicking chunk must still retire its participation (the
    /// permit-release-on-panic invariant): the joiner never deadlocks, the
    /// region aborts, and the payload is captured for rethrow.
    #[test]
    fn region_panic_still_quiesces() {
        model(|| {
            let body = |r: Range<usize>| {
                if r.start == 0 {
                    panic!("chunk boom");
                }
            };
            let region = Arc::new(make_region(2, 1, &body));
            let helper = {
                let region = Arc::clone(&region);
                thread::spawn(move || region.help())
            };
            region.execute_chunks();
            join(&region);
            helper.join().unwrap();
            assert!(
                region.aborted.load(Ordering::SeqCst),
                "a chunk panic must abort the region"
            );
            let payload = region.panic.lock().unwrap().take();
            assert!(payload.is_some(), "the panic payload must be captured");
        });
    }

    /// A stale ticket (region already cancelled) is a strict no-op: the
    /// helper must not run the body and must not disturb the accounting.
    #[test]
    fn stale_ticket_is_a_noop() {
        model(|| {
            let body = |_: Range<usize>| {
                panic!("a cancelled region's body must never run");
            };
            let region = Arc::new(make_region(2, 1, &body));
            // The submitter cancels before helping at all (as when its own
            // drain raced ahead); mark the cursor drained so execute_chunks
            // is not needed.
            region.cursor.store(2, Ordering::SeqCst);
            region.pending.swap(0, Ordering::SeqCst);
            let helper = {
                let region = Arc::clone(&region);
                thread::spawn(move || region.help())
            };
            region.active.fetch_sub(1, Ordering::SeqCst);
            let mut spins = 0u32;
            while region.active.load(Ordering::SeqCst) > 0 {
                if spins < JOIN_SPINS {
                    spins += 1;
                } else {
                    thread::park_timeout(JOIN_PARK);
                }
            }
            helper.join().unwrap();
            assert_eq!(region.active.load(Ordering::SeqCst), 0);
        });
    }
}
