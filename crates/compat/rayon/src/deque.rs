//! Lock-free dispatch structures of the persistent pool: a fixed-capacity
//! Chase–Lev work-stealing deque (one per worker) and a bounded MPMC
//! injector queue (for submissions from threads outside the pool).
//!
//! Both structures move opaque `*mut ()` values (the pool stores
//! `Arc<Region>` tickets through `Arc::into_raw`); ownership of the pointee
//! transfers to whoever pops or steals the value. Capacity is fixed and a
//! full queue rejects the push — that is safe for the pool because a ticket
//! is only an *invitation* to help with a region, never the work itself
//! (the region's iteration space lives behind an atomic cursor that the
//! submitting thread always drains), so a dropped invitation costs
//! parallelism, not correctness.
//!
//! # Chase–Lev deque
//!
//! The owner pushes and pops at the *bottom* (LIFO, cache-warm), thieves
//! take from the *top* (FIFO) with a CAS; the single contended case — one
//! element left, owner popping while a thief steals — is resolved by a CAS
//! on `top`. Memory orderings follow Lê, Pop, Cohen and Nardelli, *Correct
//! and Efficient Work-Stealing for Weak Memory Models* (PPoPP 2013). With a
//! fixed power-of-two buffer, slot `i & mask` can only be reused once `top`
//! has advanced past `i` (the push-side full check keeps `bottom - top`
//! within capacity), and any steal that read a recycled slot loses its CAS
//! on `top`, so a successful steal always returns the value that was stored
//! for its index.
//!
//! # Injector
//!
//! A bounded MPMC ring with per-slot sequence numbers (Dmitry Vyukov's
//! bounded queue): producers claim a slot by CAS on `tail`, publish the
//! value with a release store of the slot's sequence; consumers mirror the
//! protocol on `head`. No element is ever observed half-written and the
//! queue is linearisable without any lock.

use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, AtomicUsize, Ordering};

/// Result of a steal attempt on a [`ChaseLev`] deque.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum Steal {
    /// The deque had no stealable element.
    Empty,
    /// Lost a race with the owner or another thief; worth retrying.
    Retry,
    /// Took the element at the top of the deque.
    Taken(*mut ()),
}

/// Fixed-capacity Chase–Lev work-stealing deque of `*mut ()` values.
///
/// `push` and `pop` may only be called by the owning worker thread;
/// `steal` may be called by any thread.
pub(crate) struct ChaseLev {
    /// Steal end. Monotonically increasing.
    top: AtomicIsize,
    /// Owner end. Only the owner writes it outside the pop CAS protocol.
    bottom: AtomicIsize,
    /// Power-of-two ring of value slots.
    slots: Box<[AtomicPtr<()>]>,
    /// `slots.len() - 1`, for index masking.
    mask: isize,
}

// SAFETY: all fields are atomics; the single-owner restriction on
// `push`/`pop` is a protocol requirement, not a memory-safety one (both are
// plain atomic operations).
unsafe impl Send for ChaseLev {}
unsafe impl Sync for ChaseLev {}

impl ChaseLev {
    /// Creates a deque with the given power-of-two capacity.
    pub(crate) fn new(capacity: usize) -> Self {
        assert!(
            capacity.is_power_of_two(),
            "capacity must be a power of two"
        );
        Self {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            slots: (0..capacity)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
            mask: capacity as isize - 1,
        }
    }

    /// Pushes a value at the bottom. Owner only. Returns the value back when
    /// the deque is full.
    pub(crate) fn push(&self, value: *mut ()) -> Result<(), *mut ()> {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        if b - t > self.mask {
            return Err(value);
        }
        self.slots[(b & self.mask) as usize].store(value, Ordering::Relaxed);
        // Publish the slot before the new bottom becomes visible to thieves.
        self.bottom.store(b + 1, Ordering::Release);
        Ok(())
    }

    /// Pops the most recently pushed value. Owner only.
    pub(crate) fn pop(&self) -> Option<*mut ()> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        self.bottom.store(b, Ordering::Relaxed);
        // The store above must be globally visible before the top load, or a
        // concurrent thief and this pop could both take the last element.
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t > b {
            // Deque was already empty; restore bottom.
            self.bottom.store(b + 1, Ordering::Relaxed);
            return None;
        }
        let value = self.slots[(b & self.mask) as usize].load(Ordering::Relaxed);
        if t == b {
            // Last element: race the thieves for it via the top CAS.
            let won = self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            self.bottom.store(b + 1, Ordering::Relaxed);
            return won.then_some(value);
        }
        Some(value)
    }

    /// Attempts to steal the oldest value. Any thread.
    pub(crate) fn steal(&self) -> Steal {
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        let value = self.slots[(t & self.mask) as usize].load(Ordering::Relaxed);
        if self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
        {
            Steal::Taken(value)
        } else {
            Steal::Retry
        }
    }

    /// Whether the deque currently appears empty (racy; scheduling hint
    /// only — the pool's sleep protocol tolerates stale answers).
    pub(crate) fn is_empty(&self) -> bool {
        self.top.load(Ordering::Acquire) >= self.bottom.load(Ordering::Acquire)
    }
}

/// One slot of the [`Injector`] ring: a sequence number gating a value.
struct InjectorSlot {
    sequence: AtomicUsize,
    value: AtomicPtr<()>,
}

/// Bounded lock-free MPMC queue of `*mut ()` values (Vyukov's algorithm).
pub(crate) struct Injector {
    slots: Box<[InjectorSlot]>,
    mask: usize,
    /// Consumer cursor.
    head: AtomicUsize,
    /// Producer cursor.
    tail: AtomicUsize,
}

unsafe impl Send for Injector {}
unsafe impl Sync for Injector {}

impl Injector {
    /// Creates an injector with the given power-of-two capacity.
    pub(crate) fn new(capacity: usize) -> Self {
        assert!(
            capacity.is_power_of_two(),
            "capacity must be a power of two"
        );
        Self {
            slots: (0..capacity)
                .map(|i| InjectorSlot {
                    sequence: AtomicUsize::new(i),
                    value: AtomicPtr::new(std::ptr::null_mut()),
                })
                .collect(),
            mask: capacity - 1,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
        }
    }

    /// Enqueues a value; returns it back when the queue is full.
    pub(crate) fn push(&self, value: *mut ()) -> Result<(), *mut ()> {
        let mut tail = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[tail & self.mask];
            let seq = slot.sequence.load(Ordering::Acquire);
            let dif = seq as isize - tail as isize;
            if dif == 0 {
                // Slot free for this lap; claim it.
                match self.tail.compare_exchange_weak(
                    tail,
                    tail + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        slot.value.store(value, Ordering::Relaxed);
                        slot.sequence.store(tail + 1, Ordering::Release);
                        return Ok(());
                    }
                    Err(current) => tail = current,
                }
            } else if dif < 0 {
                // A full lap behind: the queue is full.
                return Err(value);
            } else {
                tail = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Dequeues the oldest value, or `None` when the queue is empty.
    pub(crate) fn pop(&self) -> Option<*mut ()> {
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[head & self.mask];
            let seq = slot.sequence.load(Ordering::Acquire);
            let dif = seq as isize - (head + 1) as isize;
            if dif == 0 {
                match self.head.compare_exchange_weak(
                    head,
                    head + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let value = slot.value.load(Ordering::Relaxed);
                        // Release the slot for the producers' next lap.
                        slot.sequence.store(head + self.mask + 1, Ordering::Release);
                        return Some(value);
                    }
                    Err(current) => head = current,
                }
            } else if dif < 0 {
                return None;
            } else {
                head = self.head.load(Ordering::Relaxed);
            }
        }
    }

    /// Whether the queue currently appears empty (racy; scheduling hint
    /// only).
    pub(crate) fn is_empty(&self) -> bool {
        self.head.load(Ordering::Acquire) >= self.tail.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicBool;

    fn boxed(v: usize) -> *mut () {
        Box::into_raw(Box::new(v)) as *mut ()
    }

    /// SAFETY: `p` must come from `boxed` and be consumed exactly once.
    unsafe fn unbox(p: *mut ()) -> usize {
        *Box::from_raw(p as *mut usize)
    }

    #[test]
    fn deque_lifo_for_owner_fifo_for_thief() {
        let d = ChaseLev::new(8);
        for v in 0..3 {
            d.push(boxed(v)).unwrap();
        }
        assert_eq!(unsafe { unbox(d.pop().unwrap()) }, 2, "owner pops LIFO");
        match d.steal() {
            Steal::Taken(p) => assert_eq!(unsafe { unbox(p) }, 0, "thief takes FIFO"),
            other => panic!("unexpected steal result {other:?}"),
        }
        assert_eq!(unsafe { unbox(d.pop().unwrap()) }, 1);
        assert!(d.pop().is_none());
        assert_eq!(d.steal(), Steal::Empty);
        assert!(d.is_empty());
    }

    #[test]
    fn deque_rejects_push_when_full() {
        let d = ChaseLev::new(4);
        for v in 0..4 {
            d.push(boxed(v)).unwrap();
        }
        let extra = boxed(99);
        let rejected = d.push(extra).expect_err("full deque must reject");
        assert_eq!(unsafe { unbox(rejected) }, 99);
        // Popping one frees a slot again.
        unsafe { unbox(d.pop().unwrap()) };
        d.push(boxed(4)).unwrap();
        while let Some(p) = d.pop() {
            unsafe { unbox(p) };
        }
    }

    #[test]
    fn deque_stress_every_value_taken_exactly_once() {
        // One owner pushing and popping, three thieves stealing: across
        // several seeded rounds every pushed value must surface exactly once
        // (no loss, no duplication) across pops and steals.
        const VALUES: usize = 20_000;
        const THIEVES: usize = 3;
        for seed in 0..4u64 {
            let d = ChaseLev::new(256);
            let done = AtomicBool::new(false);
            let (owner_got, thief_got) = std::thread::scope(|s| {
                let mut handles = Vec::new();
                for _ in 0..THIEVES {
                    handles.push(s.spawn(|| {
                        let mut got = Vec::new();
                        while !done.load(Ordering::Acquire) {
                            match d.steal() {
                                Steal::Taken(p) => got.push(unsafe { unbox(p) }),
                                Steal::Retry => std::hint::spin_loop(),
                                Steal::Empty => std::hint::spin_loop(),
                            }
                        }
                        // Drain whatever is left after the owner finished.
                        loop {
                            match d.steal() {
                                Steal::Taken(p) => got.push(unsafe { unbox(p) }),
                                Steal::Retry => continue,
                                Steal::Empty => break,
                            }
                        }
                        got
                    }));
                }
                let mut rng = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
                let mut owner_got = Vec::new();
                let mut next = 0usize;
                while next < VALUES {
                    rng = rng
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    // Seeded interleaving of pushes and pops.
                    if rng & 3 != 0 {
                        if d.push(boxed(next)).is_ok() {
                            next += 1;
                        } else if let Some(p) = d.pop() {
                            owner_got.push(unsafe { unbox(p) });
                        }
                    } else if let Some(p) = d.pop() {
                        owner_got.push(unsafe { unbox(p) });
                    }
                }
                done.store(true, Ordering::Release);
                let thief_got: Vec<usize> = handles
                    .into_iter()
                    .flat_map(|h| h.join().unwrap())
                    .collect();
                (owner_got, thief_got)
            });
            let mut seen = HashSet::new();
            for v in owner_got.iter().chain(&thief_got) {
                assert!(seen.insert(*v), "seed {seed}: value {v} surfaced twice");
            }
            assert_eq!(seen.len(), VALUES, "seed {seed}: values lost");
        }
    }

    #[test]
    fn injector_fifo_and_full_behaviour() {
        let q = Injector::new(4);
        for v in 0..4 {
            q.push(boxed(v)).unwrap();
        }
        let extra = boxed(42);
        let rejected = q.push(extra).expect_err("full injector must reject");
        assert_eq!(unsafe { unbox(rejected) }, 42);
        for v in 0..4 {
            assert_eq!(unsafe { unbox(q.pop().unwrap()) }, v, "FIFO order");
        }
        assert!(q.pop().is_none());
        assert!(q.is_empty());
        // Wrap-around lap works.
        q.push(boxed(7)).unwrap();
        assert_eq!(unsafe { unbox(q.pop().unwrap()) }, 7);
    }

    #[test]
    fn injector_stress_mpmc_accounts_for_every_value() {
        const PER_PRODUCER: usize = 8_000;
        const PRODUCERS: usize = 4;
        const CONSUMERS: usize = 4;
        let q = Injector::new(128);
        let done = AtomicBool::new(false);
        let (q, done) = (&q, &done);
        let consumed: Vec<usize> = std::thread::scope(|s| {
            let mut consumers = Vec::new();
            for _ in 0..CONSUMERS {
                consumers.push(s.spawn(|| {
                    let mut got = Vec::new();
                    loop {
                        match q.pop() {
                            Some(p) => got.push(unsafe { unbox(p) }),
                            None if done.load(Ordering::Acquire) => match q.pop() {
                                Some(p) => got.push(unsafe { unbox(p) }),
                                None => break,
                            },
                            None => std::hint::spin_loop(),
                        }
                    }
                    got
                }));
            }
            let producers: Vec<_> = (0..PRODUCERS)
                .map(|p| {
                    s.spawn(move || {
                        for i in 0..PER_PRODUCER {
                            let mut value = boxed(p * PER_PRODUCER + i);
                            loop {
                                match q.push(value) {
                                    Ok(()) => break,
                                    Err(back) => {
                                        value = back;
                                        std::hint::spin_loop();
                                    }
                                }
                            }
                        }
                    })
                })
                .collect();
            for h in producers {
                h.join().unwrap();
            }
            done.store(true, Ordering::Release);
            consumers
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let unique: HashSet<usize> = consumed.iter().copied().collect();
        assert_eq!(
            consumed.len(),
            PRODUCERS * PER_PRODUCER,
            "duplicates or loss"
        );
        assert_eq!(unique.len(), PRODUCERS * PER_PRODUCER);
    }
}
