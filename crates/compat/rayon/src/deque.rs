//! Lock-free dispatch structures of the persistent pool: a fixed-capacity
//! Chase–Lev work-stealing deque (one per worker) and a bounded MPMC
//! injector queue (for submissions from threads outside the pool).
//!
//! Both structures move opaque `*mut ()` values (the pool stores
//! `Arc<Region>` tickets through `Arc::into_raw`); ownership of the pointee
//! transfers to whoever pops or steals the value. Capacity is fixed and a
//! full queue rejects the push — that is safe for the pool because a ticket
//! is only an *invitation* to help with a region, never the work itself
//! (the region's iteration space lives behind an atomic cursor that the
//! submitting thread always drains), so a dropped invitation costs
//! parallelism, not correctness.
//!
//! # Chase–Lev deque
//!
//! The owner pushes and pops at the *bottom* (LIFO, cache-warm), thieves
//! take from the *top* (FIFO) with a CAS; the single contended case — one
//! element left, owner popping while a thief steals — is resolved by a CAS
//! on `top`. Memory orderings follow Lê, Pop, Cohen and Nardelli, *Correct
//! and Efficient Work-Stealing for Weak Memory Models* (PPoPP 2013). With a
//! fixed power-of-two buffer, slot `i & mask` can only be reused once `top`
//! has advanced past `i` (the push-side full check keeps `bottom - top`
//! within capacity), and any steal that read a recycled slot loses its CAS
//! on `top`, so a successful steal always returns the value that was stored
//! for its index.
//!
//! # Injector
//!
//! A bounded MPMC ring with per-slot sequence numbers (Dmitry Vyukov's
//! bounded queue): producers claim a slot by CAS on `tail`, publish the
//! value with a release store of the slot's sequence; consumers mirror the
//! protocol on `head`. No element is ever observed half-written and the
//! queue is linearisable without any lock.

// Under `cfg(chordal_model)` the atomics come from the chordal-checker
// facade: every operation becomes a schedule point of the deterministic
// interleaving explorer (see crates/checker and docs/concurrency.md).
#[cfg(not(chordal_model))]
use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, AtomicUsize, Ordering};

#[cfg(chordal_model)]
use chordal_checker::sync::{fence, AtomicIsize, AtomicPtr, AtomicUsize, Ordering};

/// Success ordering of the steal CAS on `top`. SeqCst is load-bearing: it
/// places the steal in the single total order that `pop`'s fence reads, so
/// an owner popping the last element either sees the steal or wins the CAS
/// itself (model test `deque_two_stealers_last_elements`). The
/// `chordal_mutate = "steal_cas"` cfg deliberately weakens it to Relaxed so
/// the model checker can prove it detects the resulting double-take.
#[inline]
fn steal_cas_ordering() -> Ordering {
    #[cfg(chordal_mutate = "steal_cas")]
    {
        Ordering::Relaxed
    }
    #[cfg(not(chordal_mutate = "steal_cas"))]
    {
        Ordering::SeqCst
    }
}

/// Ordering of the injector's slot-sequence publish store. Release is
/// load-bearing: it is the edge that makes the just-written `value` visible
/// to the consumer that acquires the sequence (model test
/// `injector_publish_is_release`). The `chordal_mutate = "injector_publish"`
/// cfg weakens it to Relaxed so the checker can prove it detects the
/// stale-value read.
#[inline]
fn injector_publish_ordering() -> Ordering {
    #[cfg(chordal_mutate = "injector_publish")]
    {
        Ordering::Relaxed
    }
    #[cfg(not(chordal_mutate = "injector_publish"))]
    {
        Ordering::Release
    }
}

/// Result of a steal attempt on a [`ChaseLev`] deque.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum Steal {
    /// The deque had no stealable element.
    Empty,
    /// Lost a race with the owner or another thief; worth retrying.
    Retry,
    /// Took the element at the top of the deque.
    Taken(*mut ()),
}

/// Fixed-capacity Chase–Lev work-stealing deque of `*mut ()` values.
///
/// `push` and `pop` may only be called by the owning worker thread;
/// `steal` may be called by any thread.
pub(crate) struct ChaseLev {
    /// Steal end. Monotonically increasing.
    top: AtomicIsize,
    /// Owner end. Only the owner writes it outside the pop CAS protocol.
    bottom: AtomicIsize,
    /// Power-of-two ring of value slots.
    slots: Box<[AtomicPtr<()>]>,
    /// `slots.len() - 1`, for index masking.
    mask: isize,
}

// SAFETY: all fields are atomics; the single-owner restriction on
// `push`/`pop` is a protocol requirement, not a memory-safety one (both are
// plain atomic operations).
unsafe impl Send for ChaseLev {}
// SAFETY: shared access only performs atomic operations (see Send above);
// the raw pointers stored in slots are opaque values, never dereferenced.
unsafe impl Sync for ChaseLev {}

impl ChaseLev {
    /// Creates a deque with the given power-of-two capacity.
    pub(crate) fn new(capacity: usize) -> Self {
        assert!(
            capacity.is_power_of_two(),
            "capacity must be a power of two"
        );
        Self {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            slots: (0..capacity)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
            mask: capacity as isize - 1,
        }
    }

    /// Pushes a value at the bottom. Owner only. Returns the value back when
    /// the deque is full.
    pub(crate) fn push(&self, value: *mut ()) -> Result<(), *mut ()> {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        if b - t > self.mask {
            return Err(value);
        }
        self.slots[(b & self.mask) as usize].store(value, Ordering::Relaxed);
        // Publish the slot before the new bottom becomes visible to thieves.
        self.bottom.store(b + 1, Ordering::Release);
        Ok(())
    }

    /// Pops the most recently pushed value. Owner only.
    pub(crate) fn pop(&self) -> Option<*mut ()> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        // Release, strengthened from the Relaxed store of Lê et al. (PPoPP
        // 2013): under C++20 release-sequence rules (P0982) a thief whose
        // acquire load of `bottom` reads *this* store does not synchronize
        // with the earlier release store from `push`, so its slot read
        // could be stale even though its top CAS succeeds. The model
        // checker finds that schedule when this store is Relaxed (model
        // test `deque_push_races_steal`); real hardware masks it, the
        // formal model does not.
        self.bottom.store(b, Ordering::Release);
        // The store above must be globally visible before the top load, or a
        // concurrent thief and this pop could both take the last element.
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t > b {
            // Deque was already empty; restore bottom. Relaxed suffices for
            // the restore stores: by the time either is written, `top` has
            // already reached `b + 1` (here) or been settled by the CAS
            // below, so a thief that bases a steal on a restore value
            // always loses its CAS and returns no slot value.
            self.bottom.store(b + 1, Ordering::Relaxed);
            return None;
        }
        let value = self.slots[(b & self.mask) as usize].load(Ordering::Relaxed);
        if t == b {
            // Last element: race the thieves for it via the top CAS.
            let won = self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            self.bottom.store(b + 1, Ordering::Relaxed);
            return won.then_some(value);
        }
        Some(value)
    }

    /// Attempts to steal the oldest value. Any thread.
    pub(crate) fn steal(&self) -> Steal {
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        let value = self.slots[(t & self.mask) as usize].load(Ordering::Relaxed);
        // The SeqCst success ordering (via the mutation seam) keeps this CAS
        // in the same total order as pop's fence; see `steal_cas_ordering`.
        if self
            .top
            .compare_exchange(t, t + 1, steal_cas_ordering(), Ordering::Relaxed)
            .is_ok()
        {
            Steal::Taken(value)
        } else {
            Steal::Retry
        }
    }

    /// Whether the deque currently appears empty (racy; scheduling hint
    /// only — the pool's sleep protocol tolerates stale answers).
    pub(crate) fn is_empty(&self) -> bool {
        self.top.load(Ordering::Acquire) >= self.bottom.load(Ordering::Acquire)
    }
}

/// One slot of the [`Injector`] ring: a sequence number gating a value.
struct InjectorSlot {
    sequence: AtomicUsize,
    value: AtomicPtr<()>,
}

/// Bounded lock-free MPMC queue of `*mut ()` values (Vyukov's algorithm).
pub(crate) struct Injector {
    slots: Box<[InjectorSlot]>,
    mask: usize,
    /// Consumer cursor.
    head: AtomicUsize,
    /// Producer cursor.
    tail: AtomicUsize,
}

// SAFETY: all fields are atomics; values are opaque pointers moved by
// value, never dereferenced by the queue itself.
unsafe impl Send for Injector {}
// SAFETY: the per-slot sequence protocol serializes all access to a slot's
// value; concurrent callers only ever touch atomics (see Send above).
unsafe impl Sync for Injector {}

impl Injector {
    /// Creates an injector with the given power-of-two capacity.
    pub(crate) fn new(capacity: usize) -> Self {
        assert!(
            capacity.is_power_of_two(),
            "capacity must be a power of two"
        );
        Self {
            slots: (0..capacity)
                .map(|i| InjectorSlot {
                    sequence: AtomicUsize::new(i),
                    value: AtomicPtr::new(std::ptr::null_mut()),
                })
                .collect(),
            mask: capacity - 1,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
        }
    }

    /// Enqueues a value; returns it back when the queue is full.
    pub(crate) fn push(&self, value: *mut ()) -> Result<(), *mut ()> {
        let mut tail = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[tail & self.mask];
            let seq = slot.sequence.load(Ordering::Acquire);
            let dif = seq as isize - tail as isize;
            if dif == 0 {
                // Slot free for this lap; claim it.
                match self.tail.compare_exchange_weak(
                    tail,
                    tail + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        slot.value.store(value, Ordering::Relaxed);
                        // Release publish (via the mutation seam): makes the
                        // value store above visible to the consumer that
                        // acquires this sequence number.
                        slot.sequence.store(tail + 1, injector_publish_ordering());
                        return Ok(());
                    }
                    Err(current) => tail = current,
                }
            } else if dif < 0 {
                // A full lap behind: the queue is full.
                return Err(value);
            } else {
                tail = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Dequeues the oldest value, or `None` when the queue is empty.
    pub(crate) fn pop(&self) -> Option<*mut ()> {
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[head & self.mask];
            let seq = slot.sequence.load(Ordering::Acquire);
            let dif = seq as isize - (head + 1) as isize;
            if dif == 0 {
                match self.head.compare_exchange_weak(
                    head,
                    head + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let value = slot.value.load(Ordering::Relaxed);
                        // Release the slot for the producers' next lap.
                        slot.sequence.store(head + self.mask + 1, Ordering::Release);
                        return Some(value);
                    }
                    Err(current) => head = current,
                }
            } else if dif < 0 {
                return None;
            } else {
                head = self.head.load(Ordering::Relaxed);
            }
        }
    }

    /// Whether the queue currently appears empty (racy; scheduling hint
    /// only).
    pub(crate) fn is_empty(&self) -> bool {
        self.head.load(Ordering::Acquire) >= self.tail.load(Ordering::Acquire)
    }
}

#[cfg(all(test, not(chordal_model)))]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicBool;

    fn boxed(v: usize) -> *mut () {
        Box::into_raw(Box::new(v)) as *mut ()
    }

    fn unbox(p: *mut ()) -> usize {
        // Every pointer in these tests comes from `boxed`, and the queues
        // surface each pushed pointer exactly once (that uniqueness is the
        // very invariant the tests assert).
        // SAFETY: unique surfacing (above) means the Box reconstruction
        // never aliases.
        unsafe { *Box::from_raw(p as *mut usize) }
    }

    #[test]
    fn deque_lifo_for_owner_fifo_for_thief() {
        let d = ChaseLev::new(8);
        for v in 0..3 {
            d.push(boxed(v)).unwrap();
        }
        assert_eq!(unbox(d.pop().unwrap()), 2, "owner pops LIFO");
        match d.steal() {
            Steal::Taken(p) => assert_eq!(unbox(p), 0, "thief takes FIFO"),
            other => panic!("unexpected steal result {other:?}"),
        }
        assert_eq!(unbox(d.pop().unwrap()), 1);
        assert!(d.pop().is_none());
        assert_eq!(d.steal(), Steal::Empty);
        assert!(d.is_empty());
    }

    #[test]
    fn deque_rejects_push_when_full() {
        let d = ChaseLev::new(4);
        for v in 0..4 {
            d.push(boxed(v)).unwrap();
        }
        let extra = boxed(99);
        let rejected = d.push(extra).expect_err("full deque must reject");
        assert_eq!(unbox(rejected), 99);
        // Popping one frees a slot again.
        unbox(d.pop().unwrap());
        d.push(boxed(4)).unwrap();
        while let Some(p) = d.pop() {
            unbox(p);
        }
    }

    #[test]
    fn deque_stress_every_value_taken_exactly_once() {
        // One owner pushing and popping, three thieves stealing: across
        // several seeded rounds every pushed value must surface exactly once
        // (no loss, no duplication) across pops and steals.
        const VALUES: usize = 20_000;
        const THIEVES: usize = 3;
        for seed in 0..4u64 {
            let d = ChaseLev::new(256);
            let done = AtomicBool::new(false);
            let (owner_got, thief_got) = std::thread::scope(|s| {
                let mut handles = Vec::new();
                for _ in 0..THIEVES {
                    handles.push(s.spawn(|| {
                        let mut got = Vec::new();
                        while !done.load(Ordering::Acquire) {
                            match d.steal() {
                                Steal::Taken(p) => got.push(unbox(p)),
                                Steal::Retry => std::hint::spin_loop(),
                                Steal::Empty => std::hint::spin_loop(),
                            }
                        }
                        // Drain whatever is left after the owner finished.
                        loop {
                            match d.steal() {
                                Steal::Taken(p) => got.push(unbox(p)),
                                Steal::Retry => continue,
                                Steal::Empty => break,
                            }
                        }
                        got
                    }));
                }
                let mut rng = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
                let mut owner_got = Vec::new();
                let mut next = 0usize;
                while next < VALUES {
                    rng = rng
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    // Seeded interleaving of pushes and pops.
                    if rng & 3 != 0 {
                        if d.push(boxed(next)).is_ok() {
                            next += 1;
                        } else if let Some(p) = d.pop() {
                            owner_got.push(unbox(p));
                        }
                    } else if let Some(p) = d.pop() {
                        owner_got.push(unbox(p));
                    }
                }
                done.store(true, Ordering::Release);
                let thief_got: Vec<usize> = handles
                    .into_iter()
                    .flat_map(|h| h.join().unwrap())
                    .collect();
                (owner_got, thief_got)
            });
            let mut seen = HashSet::new();
            for v in owner_got.iter().chain(&thief_got) {
                assert!(seen.insert(*v), "seed {seed}: value {v} surfaced twice");
            }
            assert_eq!(seen.len(), VALUES, "seed {seed}: values lost");
        }
    }

    #[test]
    fn injector_fifo_and_full_behaviour() {
        let q = Injector::new(4);
        for v in 0..4 {
            q.push(boxed(v)).unwrap();
        }
        let extra = boxed(42);
        let rejected = q.push(extra).expect_err("full injector must reject");
        assert_eq!(unbox(rejected), 42);
        for v in 0..4 {
            assert_eq!(unbox(q.pop().unwrap()), v, "FIFO order");
        }
        assert!(q.pop().is_none());
        assert!(q.is_empty());
        // Wrap-around lap works.
        q.push(boxed(7)).unwrap();
        assert_eq!(unbox(q.pop().unwrap()), 7);
    }

    #[test]
    fn injector_stress_mpmc_accounts_for_every_value() {
        const PER_PRODUCER: usize = 8_000;
        const PRODUCERS: usize = 4;
        const CONSUMERS: usize = 4;
        let q = Injector::new(128);
        let done = AtomicBool::new(false);
        let (q, done) = (&q, &done);
        let consumed: Vec<usize> = std::thread::scope(|s| {
            let mut consumers = Vec::new();
            for _ in 0..CONSUMERS {
                consumers.push(s.spawn(|| {
                    let mut got = Vec::new();
                    loop {
                        match q.pop() {
                            Some(p) => got.push(unbox(p)),
                            None if done.load(Ordering::Acquire) => match q.pop() {
                                Some(p) => got.push(unbox(p)),
                                None => break,
                            },
                            None => std::hint::spin_loop(),
                        }
                    }
                    got
                }));
            }
            let producers: Vec<_> = (0..PRODUCERS)
                .map(|p| {
                    s.spawn(move || {
                        for i in 0..PER_PRODUCER {
                            let mut value = boxed(p * PER_PRODUCER + i);
                            loop {
                                match q.push(value) {
                                    Ok(()) => break,
                                    Err(back) => {
                                        value = back;
                                        std::hint::spin_loop();
                                    }
                                }
                            }
                        }
                    })
                })
                .collect();
            for h in producers {
                h.join().unwrap();
            }
            done.store(true, Ordering::Release);
            consumers
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let unique: HashSet<usize> = consumed.iter().copied().collect();
        assert_eq!(
            consumed.len(),
            PRODUCERS * PER_PRODUCER,
            "duplicates or loss"
        );
        assert_eq!(unique.len(), PRODUCERS * PER_PRODUCER);
    }
}

/// Deterministic model-checker tests; compiled only under
/// `RUSTFLAGS="--cfg chordal_model"`, where the atomics above resolve to the
/// chordal-checker facade. Values are tagged integers disguised as pointers
/// (never dereferenced), so failing schedules leak nothing.
#[cfg(all(test, chordal_model))]
mod model_tests {
    use super::*;
    use chordal_checker::{model, run, thread, Config};
    use std::sync::Arc;

    fn tag(v: usize) -> *mut () {
        (v + 1) as *mut ()
    }

    fn untag(p: *mut ()) -> usize {
        assert!(!p.is_null(), "observed an unpublished (null) slot value");
        p as usize - 1
    }

    /// Asserts that every value surfaced exactly once across `got`.
    fn assert_exactly_once(mut got: Vec<usize>, expect: usize) {
        got.sort_unstable();
        let n = got.len();
        got.dedup();
        assert_eq!(got.len(), n, "a value surfaced twice: {got:?}");
        assert_eq!(n, expect, "values lost: {got:?}");
    }

    /// The Chase–Lev needle: two stealers racing the owner for the last
    /// elements. A weakened steal CAS lets a stale `top` read give the same
    /// element to the owner and a thief (the classic double-take).
    fn last_element_race() {
        let d = Arc::new(ChaseLev::new(4));
        d.push(tag(0)).unwrap();
        d.push(tag(1)).unwrap();
        let mut thieves = Vec::new();
        for _ in 0..2 {
            let d = Arc::clone(&d);
            thieves.push(thread::spawn(move || match d.steal() {
                Steal::Taken(p) => Some(untag(p)),
                _ => None,
            }));
        }
        let mut got = Vec::new();
        while let Some(p) = d.pop() {
            got.push(untag(p));
        }
        for h in thieves {
            if let Some(v) = h.join().unwrap() {
                got.push(v);
            }
        }
        assert_exactly_once(got, 2);
    }

    /// Under the `steal_cas` mutant this test asserts the checker FINDS a
    /// failing schedule (and reproduces it deterministically); on the real
    /// orderings it asserts an exhaustive clean pass.
    #[test]
    fn deque_two_stealers_last_elements() {
        let cfg = Config::dfs(2);
        let outcome = run(cfg, last_element_race);
        if cfg!(chordal_mutate = "steal_cas") {
            let f = outcome
                .failure
                .expect("weakened steal CAS must yield a failing schedule");
            assert!(f.schedule.contains("cas"), "schedule names the ops:\n{f:?}");
            let again = run(cfg, last_element_race);
            let g = again.failure.expect("rerun must fail too");
            assert_eq!(f.execution, g.execution, "deterministic reproduction");
            assert_eq!(f.trail, g.trail, "identical decision trail");
        } else if let Some(f) = outcome.failure {
            panic!("correct orderings must pass exhaustively:\n{}", f.report());
        } else {
            assert!(outcome.executions > 1, "explorer must branch");
        }
    }

    /// Concurrent push/steal: the push-side Release on `bottom` publishes
    /// the slot store; a thief never reads an unwritten slot and every
    /// value surfaces exactly once.
    #[test]
    fn deque_push_races_steal() {
        model(|| {
            let d = Arc::new(ChaseLev::new(2));
            let d2 = Arc::clone(&d);
            let h = thread::spawn(move || {
                let mut got = Vec::new();
                for _ in 0..2 {
                    if let Steal::Taken(p) = d2.steal() {
                        got.push(untag(p));
                    }
                }
                got
            });
            d.push(tag(0)).unwrap();
            d.push(tag(1)).unwrap();
            let mut got = Vec::new();
            while let Some(p) = d.pop() {
                got.push(untag(p));
            }
            got.extend(h.join().unwrap());
            assert_exactly_once(got, 2);
        });
    }

    /// Full/empty edges of the deque under the model facade.
    #[test]
    fn deque_full_and_empty_edges() {
        model(|| {
            let d = ChaseLev::new(2);
            d.push(tag(0)).unwrap();
            d.push(tag(1)).unwrap();
            assert_eq!(untag(d.push(tag(9)).unwrap_err()), 9, "full rejects");
            assert_eq!(untag(d.pop().unwrap()), 1, "LIFO");
            assert_eq!(untag(d.pop().unwrap()), 0);
            assert!(d.pop().is_none());
            assert_eq!(d.steal(), Steal::Empty);
        });
    }

    /// The injector publish edge: a consumer that acquires the published
    /// sequence must see the value store, never the initial null.
    fn injector_publish_race() {
        let q = Arc::new(Injector::new(2));
        let q2 = Arc::clone(&q);
        let h = thread::spawn(move || {
            if let Some(p) = q2.pop() {
                assert_eq!(untag(p), 7, "consumer saw the published value");
            }
        });
        q.push(tag(7)).unwrap();
        h.join().unwrap();
        // Whatever the race outcome, the value is still exactly-once.
        if let Some(p) = q.pop() {
            assert_eq!(untag(p), 7);
        }
    }

    /// Under the `injector_publish` mutant the checker must observe the
    /// stale (null) slot value; on the real Release publish it must pass.
    #[test]
    fn injector_publish_is_release() {
        let cfg = Config::dfs(2);
        let outcome = run(cfg, injector_publish_race);
        if cfg!(chordal_mutate = "injector_publish") {
            let f = outcome
                .failure
                .expect("Relaxed publish must yield a failing schedule");
            assert!(
                f.message.contains("unpublished") || f.message.contains("published value"),
                "{}",
                f.message
            );
            let again = run(cfg, injector_publish_race);
            assert_eq!(
                f.execution,
                again.failure.expect("rerun must fail too").execution,
                "deterministic reproduction"
            );
        } else if let Some(f) = outcome.failure {
            panic!("Release publish must pass exhaustively:\n{}", f.report());
        }
    }

    /// Two producers race for slots while the consumer drains: MPMC
    /// accounting stays exact and the full/empty laps stay consistent.
    #[test]
    fn injector_mpmc_accounting() {
        fn mpmc_round_trip() {
            let q = Arc::new(Injector::new(2));
            let mut producers = Vec::new();
            for v in 0..2 {
                let q = Arc::clone(&q);
                producers.push(thread::spawn(move || q.push(tag(v)).is_ok()));
            }
            let mut got = Vec::new();
            if let Some(p) = q.pop() {
                got.push(untag(p));
            }
            for h in producers {
                assert!(h.join().unwrap(), "capacity 2 never rejects 2 pushes");
            }
            while let Some(p) = q.pop() {
                got.push(untag(p));
            }
            assert_exactly_once(got, 2);
        }
        let outcome = run(Config::default(), mpmc_round_trip);
        if cfg!(chordal_mutate = "injector_publish") {
            // The weakened publish store also breaks MPMC accounting; the
            // checker must surface it here too, not just in the targeted
            // `injector_publish_is_release` test.
            assert!(
                outcome.failure.is_some(),
                "weakened injector publish must fail MPMC accounting"
            );
        } else if let Some(f) = outcome.failure {
            panic!("correct orderings must pass exhaustively:\n{}", f.report());
        }
    }

    /// Sequence laps: a slot is reusable after pop releases it, and a
    /// full queue rejects the producer without corrupting the ring.
    #[test]
    fn injector_lap_reuse() {
        model(|| {
            let q = Injector::new(2);
            q.push(tag(0)).unwrap();
            q.push(tag(1)).unwrap();
            assert_eq!(untag(q.push(tag(9)).unwrap_err()), 9, "full rejects");
            assert_eq!(untag(q.pop().unwrap()), 0, "FIFO");
            q.push(tag(2)).unwrap();
            assert_eq!(untag(q.pop().unwrap()), 1);
            assert_eq!(untag(q.pop().unwrap()), 2);
            assert!(q.pop().is_none());
        });
    }
}
