//! Parallel unstable sort: chunked `sort_unstable` runs followed by
//! parallel bottom-up merge passes, all scheduled on the persistent pool.
//!
//! The slice is split into roughly thread-count pieces which are sorted
//! concurrently in place; sorted runs are then merged pairwise, doubling
//! the run width each pass, with every pair merged by one pool task. Each
//! merge buffers only its *left* run (the `MergeGuard` restores the buffer
//! into the slice if a comparison panics, so the slice always holds a
//! permutation of its input — matching `slice::sort` panic semantics).

use crate::pool::Pool;

/// Below this length the parallel machinery costs more than it saves.
const MIN_PARALLEL_SORT: usize = 4 * 1024;

/// A `*mut T` that may cross thread boundaries. Disjointness of the regions
/// accessed through it is guaranteed by the chunk/pair index math below.
struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    /// The wrapped pointer. Going through a method (rather than field
    /// access) makes closures capture the `Sync` wrapper, not the raw
    /// pointer itself.
    fn get(&self) -> *mut T {
        self.0
    }
}

// SAFETY: only the owning region moves the pointer across threads, and the
// index math below hands each task a disjoint subrange (see module docs).
unsafe impl<T: Send> Send for SendPtr<T> {}
// SAFETY: shared tasks only read the pointer value; disjointness of the
// ranges they dereference is the Send argument above.
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Sorts `slice` in parallel (unstable), falling back to the sequential
/// sort for small inputs or single-threaded configurations.
pub(crate) fn par_sort_unstable<T: Ord + Send>(slice: &mut [T]) {
    let len = slice.len();
    let threads = crate::current_num_threads();
    if threads <= 1 || len < MIN_PARALLEL_SORT {
        slice.sort_unstable();
        return;
    }
    // Piece width: one piece per thread, but never below half the parallel
    // threshold so tiny pieces don't drown in scheduling overhead.
    let pieces = threads.min(len / (MIN_PARALLEL_SORT / 2)).max(2);
    let width = len.div_ceil(pieces);
    let base = SendPtr(slice.as_mut_ptr());

    // Pass 1: sort the pieces concurrently, each in place.
    Pool::global().run_region(pieces, 1, threads, |range| {
        for piece in range {
            let start = piece * width;
            let end = ((piece + 1) * width).min(len);
            if start < end {
                // SAFETY: pieces are disjoint subranges of the slice, and
                // the region completes before `par_sort_unstable` returns.
                let run =
                    unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
                run.sort_unstable();
            }
        }
    });

    // Pass 2..: merge adjacent runs, doubling the width until one run
    // spans the whole slice. Every pair is one independent task.
    let mut run = width;
    while run < len {
        let pairs = len.div_ceil(2 * run);
        Pool::global().run_region(pairs, 1, threads, |range| {
            for pair in range {
                let start = pair * 2 * run;
                let mid = (start + run).min(len);
                let end = (start + 2 * run).min(len);
                if mid < end {
                    // SAFETY: pairs cover disjoint subranges; see above.
                    let sub = unsafe {
                        std::slice::from_raw_parts_mut(base.get().add(start), end - start)
                    };
                    merge_halves(sub, mid - start);
                }
            }
        });
        run *= 2;
    }
}

/// Restores the unconsumed prefix of the merge buffer into the destination
/// gap when dropped — on the normal path this writes the left-run tail, on
/// a comparison panic it restores the slice to a permutation of its input.
struct MergeGuard<T> {
    src: *const T,
    dst: *mut T,
    remaining: usize,
}

impl<T> Drop for MergeGuard<T> {
    fn drop(&mut self) {
        // SAFETY: `src` points at `remaining` initialised elements of the
        // merge buffer whose originals have been logically moved out of the
        // slice; `dst` is the equally-sized gap they belong in.
        unsafe {
            std::ptr::copy_nonoverlapping(self.src, self.dst, self.remaining);
        }
    }
}

/// Merges the sorted runs `slice[..mid]` and `slice[mid..]` in place, using
/// a buffer of the left run.
fn merge_halves<T: Ord>(slice: &mut [T], mid: usize) {
    let len = slice.len();
    if mid == 0 || mid == len || slice[mid - 1] <= slice[mid] {
        return;
    }
    let base = slice.as_mut_ptr();
    let mut buffer: Vec<T> = Vec::with_capacity(mid);
    // SAFETY: the left run is moved into the buffer bitwise; `buffer` keeps
    // length zero so it never drops those elements itself — ownership
    // returns to the slice through the merge writes / the guard.
    unsafe {
        std::ptr::copy_nonoverlapping(base, buffer.as_mut_ptr(), mid);
        let buf = buffer.as_ptr();
        let mut guard = MergeGuard {
            src: buf,
            dst: base,
            remaining: mid,
        };
        let mut i = 0; // consumed from the buffered left run
        let mut j = mid; // consumed from the right run (in place)
        let mut k = 0; // written back
        while i < mid && j < len {
            // `k < j` always (k = i + j - mid < j since i < mid), so the
            // write below never clobbers an unread right-run element.
            if *base.add(j) < *buf.add(i) {
                std::ptr::copy_nonoverlapping(base.add(j), base.add(k), 1);
                j += 1;
            } else {
                std::ptr::copy_nonoverlapping(buf.add(i), base.add(k), 1);
                i += 1;
                guard.src = buf.add(i);
                guard.remaining = mid - i;
            }
            k += 1;
            guard.dst = base.add(k);
        }
        // The guard's drop writes any left-run tail into the final gap
        // (`k..k + remaining == len`); an exhausted left run makes it a
        // no-op and the right tail is already in place.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_halves_handles_all_layouts() {
        let cases: Vec<(Vec<u32>, usize)> = vec![
            (vec![1, 3, 5, 2, 4, 6], 3),
            (vec![4, 5, 6, 1, 2, 3], 3),
            (vec![1, 2, 3, 4, 5, 6], 3),
            (vec![2, 2, 2, 1, 1], 3),
            (vec![7], 1),
            (vec![2, 1], 1),
        ];
        for (mut v, mid) in cases {
            let mut expected = v.clone();
            expected.sort_unstable();
            merge_halves(&mut v, mid);
            assert_eq!(v, expected);
        }
    }

    #[test]
    fn par_sort_matches_sequential_sort() {
        // Deterministic pseudo-random input large enough for the parallel
        // path, plus adversarial patterns.
        let mut lcg = 0x2545F4914F6CDD1Du64;
        let mut random: Vec<u64> = (0..50_000)
            .map(|_| {
                lcg = lcg
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                lcg >> 17
            })
            .collect();
        let mut reversed: Vec<u64> = (0..30_000).rev().collect();
        let mut sawtooth: Vec<u64> = (0..40_000).map(|i| (i % 7) as u64).collect();
        for input in [&mut random, &mut reversed, &mut sawtooth] {
            let mut expected = input.clone();
            expected.sort_unstable();
            par_sort_unstable(input);
            assert_eq!(*input, expected);
        }
    }

    #[test]
    fn par_sort_handles_non_copy_elements() {
        let mut v: Vec<String> = (0..12_000)
            .map(|i| format!("{:05}", (i * 37) % 9973))
            .collect();
        let mut expected = v.clone();
        expected.sort_unstable();
        par_sort_unstable(&mut v);
        assert_eq!(v, expected);
    }
}
