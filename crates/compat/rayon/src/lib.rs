//! Minimal in-tree substitute for the subset of the `rayon` API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so this crate provides
//! drop-in implementations of the combinators the workspace calls —
//! `into_par_iter` on ranges, `par_iter`/`par_iter_mut`/`par_chunks`/
//! `par_chunks_mut`/`par_sort_unstable` on slices, `map`/`flat_map_iter`/
//! `for_each`/`collect`/`sum`/`max`, and `ThreadPool`/`ThreadPoolBuilder`
//! with `install`. Work is executed on scoped OS threads pulled from a
//! shared index queue, so the parallel semantics (unordered execution,
//! order-preserving `collect`) match the real crate; only the work-stealing
//! scheduler is simplified.

use std::cell::Cell;
use std::fmt;
use std::ops::Range;
use std::sync::Mutex;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`];
    /// 0 means "not inside a pool, use all available cores".
    static INSTALLED_THREADS: Cell<usize> = const { Cell::new(0) };
}

fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Number of worker threads parallel operations on this thread should use.
pub fn current_num_threads() -> usize {
    let installed = INSTALLED_THREADS.with(Cell::get);
    if installed == 0 {
        available_threads()
    } else {
        installed
    }
}

// ---------------------------------------------------------------------------
// Thread pool
// ---------------------------------------------------------------------------

/// Error returned when a pool cannot be constructed.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default (all cores) configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of worker threads (0 = all available cores).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Accepted for API compatibility; worker threads are created per
    /// parallel region here, so the name function is not retained.
    pub fn thread_name<F>(self, _f: F) -> Self
    where
        F: FnMut(usize) -> String,
    {
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            available_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads })
    }
}

/// A lightweight stand-in for `rayon::ThreadPool`: it records the requested
/// parallelism and scopes it over [`ThreadPool::install`]; the actual worker
/// threads are spawned per parallel region.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count installed for any parallel
    /// iterators it invokes.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        let previous = INSTALLED_THREADS.with(|c| c.replace(self.threads));
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(previous);
        op()
    }

    /// Number of worker threads this pool uses.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

// ---------------------------------------------------------------------------
// Execution driver
// ---------------------------------------------------------------------------

/// Splits `0..len` into chunks and runs `f` over them on scoped threads,
/// returning the per-chunk results in chunk order.
fn drive_chunks<T, F>(len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    let threads = current_num_threads().min(len).max(1);
    if threads == 1 {
        return vec![f(0..len)];
    }
    // Over-decompose so skewed chunks load-balance, like rayon's splitting.
    let chunk = len.div_ceil(threads * 4).max(1);
    let chunks = len.div_ceil(chunk);
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let out: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(chunks));
    std::thread::scope(|scope| {
        for _ in 0..threads.min(chunks) {
            scope.spawn(|| loop {
                let ci = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if ci >= chunks {
                    break;
                }
                let start = ci * chunk;
                let end = (start + chunk).min(len);
                let value = f(start..end);
                out.lock().unwrap().push((ci, value));
            });
        }
    });
    let mut pairs = out.into_inner().unwrap();
    pairs.sort_unstable_by_key(|&(i, _)| i);
    pairs.into_iter().map(|(_, v)| v).collect()
}

/// Runs `f` over every work item popped from a shared queue. Used for
/// mutable-slice iteration where index math cannot express the split.
fn drive_items<I, F>(items: Vec<I>, f: F)
where
    I: Send,
    F: Fn(I) + Sync,
{
    let n = items.len();
    if n == 0 {
        return;
    }
    let threads = current_num_threads().min(n).max(1);
    if threads == 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let queue = Mutex::new(items.into_iter());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let item = queue.lock().unwrap().next();
                match item {
                    Some(item) => f(item),
                    None => break,
                }
            });
        }
    });
}

// ---------------------------------------------------------------------------
// Parallel iterators over ranges
// ---------------------------------------------------------------------------

/// Parallel iterator over a `Range<usize>`.
pub struct ParRange {
    range: Range<usize>,
}

impl ParRange {
    fn len(&self) -> usize {
        self.range.end.saturating_sub(self.range.start)
    }

    /// Runs `f` for every index, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let start = self.range.start;
        drive_chunks(self.len(), |r| {
            for i in r {
                f(start + i);
            }
        });
    }

    /// Maps every index through `f`.
    pub fn map<B, F>(self, f: F) -> RangeMap<B, F>
    where
        F: Fn(usize) -> B + Sync,
        B: Send,
    {
        RangeMap {
            range: self.range,
            f,
            _marker: std::marker::PhantomData,
        }
    }

    /// Maps every index to a serial iterator and concatenates the results
    /// (rayon's `flat_map_iter`).
    pub fn flat_map_iter<U, F>(self, f: F) -> RangeFlatMap<F>
    where
        F: Fn(usize) -> U + Sync,
        U: IntoIterator,
        U::Item: Send,
    {
        RangeFlatMap {
            range: self.range,
            f,
        }
    }
}

/// Mapped parallel range iterator.
pub struct RangeMap<B, F> {
    range: Range<usize>,
    f: F,
    _marker: std::marker::PhantomData<fn() -> B>,
}

impl<B, F> RangeMap<B, F>
where
    F: Fn(usize) -> B + Sync,
    B: Send,
{
    /// Collects the mapped values in index order.
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<B>,
    {
        let start = self.range.start;
        let len = self.range.end.saturating_sub(start);
        let f = &self.f;
        drive_chunks(len, |r| r.map(|i| f(start + i)).collect::<Vec<B>>())
            .into_iter()
            .flatten()
            .collect()
    }

    /// Sums the mapped values.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<B> + std::iter::Sum<S> + Send,
    {
        let start = self.range.start;
        let len = self.range.end.saturating_sub(start);
        let f = &self.f;
        drive_chunks(len, |r| r.map(|i| f(start + i)).sum::<S>())
            .into_iter()
            .sum()
    }

    /// Maximum of the mapped values.
    pub fn max(self) -> Option<B>
    where
        B: Ord,
    {
        let start = self.range.start;
        let len = self.range.end.saturating_sub(start);
        let f = &self.f;
        drive_chunks(len, |r| r.map(|i| f(start + i)).max())
            .into_iter()
            .flatten()
            .max()
    }

    /// Runs the mapped computation for its side effects.
    pub fn for_each(self) {
        let start = self.range.start;
        let len = self.range.end.saturating_sub(start);
        let f = &self.f;
        drive_chunks(len, |r| {
            for i in r {
                let _ = f(start + i);
            }
        });
    }
}

/// Flat-mapped parallel range iterator.
pub struct RangeFlatMap<F> {
    range: Range<usize>,
    f: F,
}

impl<F> RangeFlatMap<F> {
    /// Collects the concatenation of every produced iterator, preserving
    /// index order.
    pub fn collect<U, C>(self) -> C
    where
        F: Fn(usize) -> U + Sync,
        U: IntoIterator,
        U::Item: Send,
        C: FromIterator<U::Item>,
    {
        let start = self.range.start;
        let len = self.range.end.saturating_sub(start);
        let f = &self.f;
        drive_chunks(len, |r| {
            let mut local = Vec::new();
            for i in r {
                local.extend(f(start + i));
            }
            local
        })
        .into_iter()
        .flatten()
        .collect()
    }
}

// ---------------------------------------------------------------------------
// Parallel iterators over slices
// ---------------------------------------------------------------------------

/// Parallel iterator over `&[T]`.
pub struct ParSlice<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParSlice<'a, T> {
    /// Maps every element reference through `f`.
    pub fn map<B, F>(self, f: F) -> SliceMap<'a, T, B, F>
    where
        F: Fn(&'a T) -> B + Sync,
        B: Send,
    {
        SliceMap {
            slice: self.slice,
            f,
            _marker: std::marker::PhantomData,
        }
    }

    /// Copies every element (for `.copied().max()` style chains).
    pub fn copied(self) -> SliceCopied<'a, T>
    where
        T: Copy,
    {
        SliceCopied { slice: self.slice }
    }

    /// Sums the element references.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<&'a T> + std::iter::Sum<S> + Send,
    {
        let slice = self.slice;
        drive_chunks(slice.len(), |r| slice[r].iter().sum::<S>())
            .into_iter()
            .sum()
    }
}

/// Mapped parallel slice iterator.
pub struct SliceMap<'a, T, B, F> {
    slice: &'a [T],
    f: F,
    _marker: std::marker::PhantomData<fn() -> B>,
}

impl<'a, T: Sync, B, F> SliceMap<'a, T, B, F>
where
    F: Fn(&'a T) -> B + Sync,
    B: Send,
{
    /// Collects the mapped values in element order.
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<B>,
    {
        let slice = self.slice;
        let f = &self.f;
        drive_chunks(slice.len(), |r| slice[r].iter().map(f).collect::<Vec<B>>())
            .into_iter()
            .flatten()
            .collect()
    }

    /// Sums the mapped values.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<B> + std::iter::Sum<S> + Send,
    {
        let slice = self.slice;
        let f = &self.f;
        drive_chunks(slice.len(), |r| slice[r].iter().map(f).sum::<S>())
            .into_iter()
            .sum()
    }
}

/// Copied parallel slice iterator.
pub struct SliceCopied<'a, T> {
    slice: &'a [T],
}

impl<T: Sync + Send + Copy> SliceCopied<'_, T> {
    /// Maximum element.
    pub fn max(self) -> Option<T>
    where
        T: Ord,
    {
        let slice = self.slice;
        drive_chunks(slice.len(), |r| slice[r].iter().copied().max())
            .into_iter()
            .flatten()
            .max()
    }

    /// Sum of the elements.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<T> + std::iter::Sum<S> + Send,
    {
        let slice = self.slice;
        drive_chunks(slice.len(), |r| slice[r].iter().copied().sum::<S>())
            .into_iter()
            .sum()
    }
}

/// Parallel iterator over `&mut [T]`.
pub struct ParSliceMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParSliceMut<'a, T> {
    /// Runs `f` on every element, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a mut T) + Sync,
    {
        let threads = current_num_threads().max(1);
        let len = self.slice.len();
        if len == 0 {
            return;
        }
        let chunk = len.div_ceil(threads * 4).max(1);
        let pieces: Vec<&'a mut [T]> = self.slice.chunks_mut(chunk).collect();
        drive_items(pieces, |piece| {
            for item in piece {
                f(item);
            }
        });
    }
}

/// Parallel iterator over immutable chunks of a slice.
pub struct ParChunks<'a, T> {
    chunks: Vec<&'a [T]>,
}

/// Parallel iterator over mutable chunks of a slice.
pub struct ParChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send + Sync> ParChunksMut<'a, T> {
    /// Pairs the mutable chunks with another chunk iterator.
    pub fn zip<U>(self, other: ParChunks<'a, U>) -> ParZipChunks<'a, T, U> {
        ParZipChunks {
            pairs: self.chunks.into_iter().zip(other.chunks).collect(),
        }
    }

    /// Runs `f` on every chunk, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a mut [T]) + Sync,
    {
        drive_items(self.chunks, f);
    }
}

/// Zipped mutable/immutable chunk pairs.
pub struct ParZipChunks<'a, T, U> {
    pairs: Vec<(&'a mut [T], &'a [U])>,
}

impl<'a, T: Send, U: Sync + Send> ParZipChunks<'a, T, U> {
    /// Runs `f` on every `(mutable chunk, immutable chunk)` pair.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((&'a mut [T], &'a [U])) + Sync,
    {
        drive_items(self.pairs, f);
    }
}

// ---------------------------------------------------------------------------
// Prelude traits
// ---------------------------------------------------------------------------

/// Extension traits mirroring `rayon::prelude`.
pub mod prelude {
    use super::*;

    /// `into_par_iter` for owned iterables (ranges).
    pub trait IntoParallelIterator {
        /// The parallel iterator type.
        type ParIter;
        /// Converts `self` into a parallel iterator.
        fn into_par_iter(self) -> Self::ParIter;
    }

    impl IntoParallelIterator for Range<usize> {
        type ParIter = ParRange;
        fn into_par_iter(self) -> ParRange {
            ParRange { range: self }
        }
    }

    /// `par_iter` / `par_chunks` over shared slices.
    pub trait ParallelSliceExt<T: Sync> {
        /// Parallel iterator over the elements.
        fn par_iter(&self) -> ParSlice<'_, T>;
        /// Parallel iterator over `size`-element chunks.
        fn par_chunks(&self, size: usize) -> ParChunks<'_, T>;
    }

    impl<T: Sync> ParallelSliceExt<T> for [T] {
        fn par_iter(&self) -> ParSlice<'_, T> {
            ParSlice { slice: self }
        }
        fn par_chunks(&self, size: usize) -> ParChunks<'_, T> {
            ParChunks {
                chunks: self.chunks(size.max(1)).collect(),
            }
        }
    }

    /// `par_iter_mut` / `par_chunks_mut` / `par_sort_unstable` over mutable
    /// slices.
    pub trait ParallelSliceMutExt<T: Send> {
        /// Parallel iterator over mutable element references.
        fn par_iter_mut(&mut self) -> ParSliceMut<'_, T>;
        /// Parallel iterator over mutable `size`-element chunks.
        fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
        /// Unstable sort (sequential here; the API matches rayon).
        fn par_sort_unstable(&mut self)
        where
            T: Ord;
    }

    impl<T: Send> ParallelSliceMutExt<T> for [T] {
        fn par_iter_mut(&mut self) -> ParSliceMut<'_, T> {
            ParSliceMut { slice: self }
        }
        fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
            ParChunksMut {
                chunks: self.chunks_mut(size.max(1)).collect(),
            }
        }
        fn par_sort_unstable(&mut self)
        where
            T: Ord,
        {
            self.sort_unstable();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn range_for_each_visits_every_index_once() {
        let n = 10_000;
        let counters: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        (0..n).into_par_iter().for_each(|i| {
            counters[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn range_map_collect_preserves_order() {
        let v: Vec<usize> = (0..5_000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..5_000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn range_map_sum_and_max() {
        let s: usize = (0..1_000).into_par_iter().map(|i| i).sum();
        assert_eq!(s, 499_500);
        let m = (0..1_000).into_par_iter().map(|i| i ^ 0x2a).max();
        assert_eq!(m, (0..1_000).map(|i| i ^ 0x2a).max());
    }

    #[test]
    fn flat_map_iter_concatenates_in_order() {
        let v: Vec<usize> = (0..100)
            .into_par_iter()
            .flat_map_iter(|i| vec![i; i % 3])
            .collect();
        let expected: Vec<usize> = (0..100).flat_map(|i| vec![i; i % 3]).collect();
        assert_eq!(v, expected);
    }

    #[test]
    fn slice_combinators() {
        let data: Vec<u32> = (0..4_000).map(|i| (i * 7) % 1_000).collect();
        let doubled: Vec<u32> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled[17], data[17] * 2);
        assert_eq!(data.par_iter().copied().max(), data.iter().copied().max());
        let total: u32 = data.par_iter().sum();
        assert_eq!(total, data.iter().sum::<u32>());
    }

    #[test]
    fn slice_mut_for_each_and_sort() {
        let mut data: Vec<u64> = (0..3_000).rev().collect();
        data.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(data[0], 3_000);
        data.par_sort_unstable();
        assert_eq!(data[0], 1);
        assert_eq!(data[2_999], 3_000);
    }

    #[test]
    fn zipped_chunks_pair_up() {
        let src: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let mut dst = vec![0.0f64; 100];
        dst.par_chunks_mut(10)
            .zip(src.par_chunks(10))
            .for_each(|(out, row)| {
                for (o, &x) in out.iter_mut().zip(row) {
                    *o = x * 3.0;
                }
            });
        assert_eq!(dst[33], 99.0);
    }

    #[test]
    fn pool_install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        pool.install(|| {
            assert_eq!(current_num_threads(), 3);
        });
        assert_ne!(current_num_threads(), 0);
    }
}
