//! Minimal in-tree substitute for the subset of the `rayon` API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so this crate provides
//! drop-in implementations of the combinators the workspace calls —
//! `into_par_iter` on ranges, `par_iter`/`par_iter_mut`/`par_chunks`/
//! `par_chunks_mut`/`par_sort_unstable` on slices, `map`/`flat_map_iter`/
//! `for_each`/`collect`/`sum`/`max`, and `ThreadPool`/`ThreadPoolBuilder`
//! with `install`.
//!
//! All parallel work runs on one **lazily-spawned persistent worker pool**
//! (see [`mod@pool`]): parallel regions publish work tickets to lock-free
//! per-worker Chase–Lev deques (LIFO for the owning worker, FIFO CAS
//! steals for everyone else) with a bounded lock-free injector for
//! submissions from outside the pool, panics propagate to the submitting
//! thread, and no OS thread is ever spawned per region — after warm-up the
//! pool's thread count is constant ([`pool_spawned_threads`]). Per-chunk
//! results are collected through pre-sized write-once slots
//! ([`slots::ChunkSlots`]) instead of a mutex-guarded vector, so neither
//! ticket dispatch nor result collection takes a lock on the region hot
//! path. The pool is sized by the `CHORDAL_POOL_THREADS` environment
//! variable (default: all logical CPUs); [`ThreadPool::install`] bounds
//! the parallelism of the regions it scopes without creating threads of
//! its own. `par_sort_unstable` is a genuinely parallel merge sort
//! (parallel chunk sorts + parallel merge passes).
//!
//! Extensions beyond the real rayon API, used by `chordal-runtime` and the
//! test-suite: [`run_pooled_region`], [`pool_size`],
//! [`pool_spawned_threads`], [`pool_stats`],
//! [`estimated_region_overhead_ns`], and the [`slots`] module.

mod deque;
mod pool;
pub mod slots;
mod sort;

pub use pool::PoolStats;

use slots::{ChunkSlots, ItemSlots};
use std::cell::Cell;
use std::fmt;
use std::ops::Range;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`];
    /// 0 means "not inside a pool, use the shared pool's size".
    static INSTALLED_THREADS: Cell<usize> = const { Cell::new(0) };
}

fn available_threads() -> usize {
    pool::configured_size()
}

/// Number of worker threads parallel operations on this thread should use.
pub fn current_num_threads() -> usize {
    let installed = INSTALLED_THREADS.with(Cell::get);
    if installed == 0 {
        available_threads()
    } else {
        installed
    }
}

/// Runs `f` over `grain`-sized chunks of `0..len` on the shared persistent
/// pool, using at most `parallelism` threads (the calling thread plus pool
/// workers). Chunks are claimed dynamically, so skewed work load-balances;
/// a panic in any chunk aborts the region and is re-thrown on the calling
/// thread once in-flight chunks retire.
///
/// This is an extension beyond the real rayon API: it is the primitive the
/// `chordal-runtime` chunked engine schedules through, so that *every*
/// engine in the workspace reuses the same persistent workers.
pub fn run_pooled_region<F>(len: usize, grain: usize, parallelism: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    pool::Pool::global().run_region(len, grain, parallelism, f);
}

/// Number of worker threads the shared persistent pool has (or will have
/// once the first parallel region spawns it): the `CHORDAL_POOL_THREADS`
/// environment variable when set, otherwise the number of logical CPUs.
pub fn pool_size() -> usize {
    pool::configured_size()
}

/// Total OS threads the shared pool has spawned so far: zero before the
/// first parallel region, and exactly [`pool_size`] afterwards. Tests use
/// this to prove that parallel regions reuse pool workers instead of
/// spawning threads.
pub fn pool_spawned_threads() -> usize {
    pool::spawned_so_far()
}

/// Monotonic scheduling counters of the shared pool (regions submitted,
/// tickets published, foreign-deque steals); all zero before the first
/// parallel region. Callers interested in one workload take a delta around
/// it — benchmarks report those deltas next to their timings.
pub fn pool_stats() -> PoolStats {
    pool::stats_so_far()
}

/// Measured cost of dispatching and joining one (near-empty) two-participant
/// parallel region, in nanoseconds: ticket publication, worker wake-up,
/// cursor handshake and join. Shorthand for
/// [`estimated_region_overhead_ns_for`]`(2)` — kept for callers that only
/// need an order-of-magnitude dispatch cost.
pub fn estimated_region_overhead_ns() -> u64 {
    pool::estimated_overhead_ns(2)
}

/// Measured per-region dispatch-and-join cost for a region with
/// `parallelism` participants, in nanoseconds. Calibrated on the shared
/// pool at first call *per participant count* and memoised per count (a
/// wider region publishes more tickets and pays more wake-ups, so the
/// samples genuinely differ); the adaptive batch scheduler in
/// `chordal-core` keys its cost model on the session's thread count through
/// this function.
pub fn estimated_region_overhead_ns_for(parallelism: usize) -> u64 {
    pool::estimated_overhead_ns(parallelism)
}

/// Number of shared-pool workers currently parked with nothing to do — a
/// constant-time, racy hint (zero before the first parallel region spawns
/// the pool). Schedulers use it to spot spare capacity; the batch
/// rebalancer in `chordal-core` promotes fan-out tail work to intra-graph
/// parallelism when the remaining tail could not occupy the idle workers
/// anyway.
pub fn pool_idle_workers() -> usize {
    pool::idle_so_far()
}

/// Monotonic count of parallel regions submitted *by the calling thread*.
/// Unlike a delta of [`pool_stats`]`().regions`, a delta of this value
/// cannot absorb regions that other threads submitted concurrently, so a
/// scheduler can attribute region counts to one of its own extractions
/// without cross-talk (nested regions submitted by pool workers on its
/// behalf are not included).
pub fn pool_regions_submitted_locally() -> u64 {
    pool::local_regions_submitted()
}

// ---------------------------------------------------------------------------
// Thread pool
// ---------------------------------------------------------------------------

/// Error returned when a pool cannot be constructed.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default (all cores) configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of worker threads (0 = all available cores).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Accepted for API compatibility; all work runs on the shared
    /// persistent pool (whose threads are named at spawn), so the name
    /// function is not retained.
    pub fn thread_name<F>(self, _f: F) -> Self
    where
        F: FnMut(usize) -> String,
    {
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            available_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads })
    }
}

/// A lightweight stand-in for `rayon::ThreadPool`: it records the requested
/// parallelism and scopes it over [`ThreadPool::install`]; the work itself
/// runs on the shared persistent pool, capped at this pool's thread count.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count installed for any parallel
    /// iterators it invokes.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        let previous = INSTALLED_THREADS.with(|c| c.replace(self.threads));
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(previous);
        op()
    }

    /// Number of worker threads this pool uses.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

// ---------------------------------------------------------------------------
// Execution driver
// ---------------------------------------------------------------------------

/// Splits `0..len` into chunks and runs `f` over them on the persistent
/// pool, returning the per-chunk results in chunk order.
///
/// Collection is slot-based: the region's cursor hands out disjoint,
/// grain-aligned ranges, so chunk `range.start / chunk` writes its result
/// into its own pre-sized slot — no mutex, no append contention, no
/// post-hoc sort (the slots are already in chunk order).
fn drive_chunks<T, F>(len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    let threads = current_num_threads().min(len).max(1);
    if threads == 1 {
        return vec![f(0..len)];
    }
    // Over-decompose so skewed chunks load-balance, like rayon's splitting.
    // `threads >= 2` here, so the region below always splits by `chunk`
    // (never the inline single-range path) and the slot indexing is exact.
    let chunk = len.div_ceil(threads * 4).max(1);
    let chunks = len.div_ceil(chunk);
    let out: ChunkSlots<T> = ChunkSlots::new(chunks);
    pool::Pool::global().run_region(len, chunk, threads, |range| {
        let index = range.start / chunk;
        out.write(index, f(range));
    });
    out.into_vec()
}

/// Runs `f` over every work item exactly once, on the persistent pool.
/// Used for mutable-slice iteration where index math cannot express the
/// split.
fn drive_items<I, F>(items: Vec<I>, f: F)
where
    I: Send,
    F: Fn(I) + Sync,
{
    let n = items.len();
    if n == 0 {
        return;
    }
    let threads = current_num_threads().min(n).max(1);
    if threads == 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let slots = ItemSlots::new(items);
    pool::Pool::global().run_region(n, 1, threads, |range| {
        for i in range {
            // SAFETY: the region hands out disjoint ranges, so this thread
            // is the unique taker of index `i`.
            if let Some(item) = unsafe { slots.take(i) } {
                f(item);
            }
        }
    });
}

// ---------------------------------------------------------------------------
// Parallel iterators over ranges
// ---------------------------------------------------------------------------

/// Parallel iterator over a `Range<usize>`.
pub struct ParRange {
    range: Range<usize>,
}

impl ParRange {
    fn len(&self) -> usize {
        self.range.end.saturating_sub(self.range.start)
    }

    /// Runs `f` for every index, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let start = self.range.start;
        drive_chunks(self.len(), |r| {
            for i in r {
                f(start + i);
            }
        });
    }

    /// Maps every index through `f`.
    pub fn map<B, F>(self, f: F) -> RangeMap<B, F>
    where
        F: Fn(usize) -> B + Sync,
        B: Send,
    {
        RangeMap {
            range: self.range,
            f,
            _marker: std::marker::PhantomData,
        }
    }

    /// Maps every index to a serial iterator and concatenates the results
    /// (rayon's `flat_map_iter`).
    pub fn flat_map_iter<U, F>(self, f: F) -> RangeFlatMap<F>
    where
        F: Fn(usize) -> U + Sync,
        U: IntoIterator,
        U::Item: Send,
    {
        RangeFlatMap {
            range: self.range,
            f,
        }
    }
}

/// Mapped parallel range iterator.
pub struct RangeMap<B, F> {
    range: Range<usize>,
    f: F,
    _marker: std::marker::PhantomData<fn() -> B>,
}

impl<B, F> RangeMap<B, F>
where
    F: Fn(usize) -> B + Sync,
    B: Send,
{
    /// Collects the mapped values in index order.
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<B>,
    {
        let start = self.range.start;
        let len = self.range.end.saturating_sub(start);
        let f = &self.f;
        drive_chunks(len, |r| r.map(|i| f(start + i)).collect::<Vec<B>>())
            .into_iter()
            .flatten()
            .collect()
    }

    /// Sums the mapped values.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<B> + std::iter::Sum<S> + Send,
    {
        let start = self.range.start;
        let len = self.range.end.saturating_sub(start);
        let f = &self.f;
        drive_chunks(len, |r| r.map(|i| f(start + i)).sum::<S>())
            .into_iter()
            .sum()
    }

    /// Maximum of the mapped values.
    pub fn max(self) -> Option<B>
    where
        B: Ord,
    {
        let start = self.range.start;
        let len = self.range.end.saturating_sub(start);
        let f = &self.f;
        drive_chunks(len, |r| r.map(|i| f(start + i)).max())
            .into_iter()
            .flatten()
            .max()
    }

    /// Runs the mapped computation for its side effects.
    pub fn for_each(self) {
        let start = self.range.start;
        let len = self.range.end.saturating_sub(start);
        let f = &self.f;
        drive_chunks(len, |r| {
            for i in r {
                let _ = f(start + i);
            }
        });
    }
}

/// Flat-mapped parallel range iterator.
pub struct RangeFlatMap<F> {
    range: Range<usize>,
    f: F,
}

impl<F> RangeFlatMap<F> {
    /// Collects the concatenation of every produced iterator, preserving
    /// index order.
    pub fn collect<U, C>(self) -> C
    where
        F: Fn(usize) -> U + Sync,
        U: IntoIterator,
        U::Item: Send,
        C: FromIterator<U::Item>,
    {
        let start = self.range.start;
        let len = self.range.end.saturating_sub(start);
        let f = &self.f;
        drive_chunks(len, |r| {
            let mut local = Vec::new();
            for i in r {
                local.extend(f(start + i));
            }
            local
        })
        .into_iter()
        .flatten()
        .collect()
    }
}

// ---------------------------------------------------------------------------
// Parallel iterators over slices
// ---------------------------------------------------------------------------

/// Parallel iterator over `&[T]`.
pub struct ParSlice<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParSlice<'a, T> {
    /// Maps every element reference through `f`.
    pub fn map<B, F>(self, f: F) -> SliceMap<'a, T, B, F>
    where
        F: Fn(&'a T) -> B + Sync,
        B: Send,
    {
        SliceMap {
            slice: self.slice,
            f,
            _marker: std::marker::PhantomData,
        }
    }

    /// Copies every element (for `.copied().max()` style chains).
    pub fn copied(self) -> SliceCopied<'a, T>
    where
        T: Copy,
    {
        SliceCopied { slice: self.slice }
    }

    /// Sums the element references.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<&'a T> + std::iter::Sum<S> + Send,
    {
        let slice = self.slice;
        drive_chunks(slice.len(), |r| slice[r].iter().sum::<S>())
            .into_iter()
            .sum()
    }
}

/// Mapped parallel slice iterator.
pub struct SliceMap<'a, T, B, F> {
    slice: &'a [T],
    f: F,
    _marker: std::marker::PhantomData<fn() -> B>,
}

impl<'a, T: Sync, B, F> SliceMap<'a, T, B, F>
where
    F: Fn(&'a T) -> B + Sync,
    B: Send,
{
    /// Collects the mapped values in element order.
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<B>,
    {
        let slice = self.slice;
        let f = &self.f;
        drive_chunks(slice.len(), |r| slice[r].iter().map(f).collect::<Vec<B>>())
            .into_iter()
            .flatten()
            .collect()
    }

    /// Sums the mapped values.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<B> + std::iter::Sum<S> + Send,
    {
        let slice = self.slice;
        let f = &self.f;
        drive_chunks(slice.len(), |r| slice[r].iter().map(f).sum::<S>())
            .into_iter()
            .sum()
    }
}

/// Copied parallel slice iterator.
pub struct SliceCopied<'a, T> {
    slice: &'a [T],
}

impl<T: Sync + Send + Copy> SliceCopied<'_, T> {
    /// Maximum element.
    pub fn max(self) -> Option<T>
    where
        T: Ord,
    {
        let slice = self.slice;
        drive_chunks(slice.len(), |r| slice[r].iter().copied().max())
            .into_iter()
            .flatten()
            .max()
    }

    /// Sum of the elements.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<T> + std::iter::Sum<S> + Send,
    {
        let slice = self.slice;
        drive_chunks(slice.len(), |r| slice[r].iter().copied().sum::<S>())
            .into_iter()
            .sum()
    }
}

/// Parallel iterator over `&mut [T]`.
pub struct ParSliceMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParSliceMut<'a, T> {
    /// Runs `f` on every element, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a mut T) + Sync,
    {
        let threads = current_num_threads().max(1);
        let len = self.slice.len();
        if len == 0 {
            return;
        }
        let chunk = len.div_ceil(threads * 4).max(1);
        let pieces: Vec<&'a mut [T]> = self.slice.chunks_mut(chunk).collect();
        drive_items(pieces, |piece| {
            for item in piece {
                f(item);
            }
        });
    }
}

/// Parallel iterator over immutable chunks of a slice.
pub struct ParChunks<'a, T> {
    chunks: Vec<&'a [T]>,
}

/// Parallel iterator over mutable chunks of a slice.
pub struct ParChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send + Sync> ParChunksMut<'a, T> {
    /// Pairs the mutable chunks with another chunk iterator.
    pub fn zip<U>(self, other: ParChunks<'a, U>) -> ParZipChunks<'a, T, U> {
        ParZipChunks {
            pairs: self.chunks.into_iter().zip(other.chunks).collect(),
        }
    }

    /// Runs `f` on every chunk, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a mut [T]) + Sync,
    {
        drive_items(self.chunks, f);
    }
}

/// Zipped mutable/immutable chunk pairs.
pub struct ParZipChunks<'a, T, U> {
    pairs: Vec<(&'a mut [T], &'a [U])>,
}

impl<'a, T: Send, U: Sync + Send> ParZipChunks<'a, T, U> {
    /// Runs `f` on every `(mutable chunk, immutable chunk)` pair.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((&'a mut [T], &'a [U])) + Sync,
    {
        drive_items(self.pairs, f);
    }
}

// ---------------------------------------------------------------------------
// Prelude traits
// ---------------------------------------------------------------------------

/// Extension traits mirroring `rayon::prelude`.
pub mod prelude {
    use super::*;

    /// `into_par_iter` for owned iterables (ranges).
    pub trait IntoParallelIterator {
        /// The parallel iterator type.
        type ParIter;
        /// Converts `self` into a parallel iterator.
        fn into_par_iter(self) -> Self::ParIter;
    }

    impl IntoParallelIterator for Range<usize> {
        type ParIter = ParRange;
        fn into_par_iter(self) -> ParRange {
            ParRange { range: self }
        }
    }

    /// `par_iter` / `par_chunks` over shared slices.
    pub trait ParallelSliceExt<T: Sync> {
        /// Parallel iterator over the elements.
        fn par_iter(&self) -> ParSlice<'_, T>;
        /// Parallel iterator over `size`-element chunks.
        fn par_chunks(&self, size: usize) -> ParChunks<'_, T>;
    }

    impl<T: Sync> ParallelSliceExt<T> for [T] {
        fn par_iter(&self) -> ParSlice<'_, T> {
            ParSlice { slice: self }
        }
        fn par_chunks(&self, size: usize) -> ParChunks<'_, T> {
            ParChunks {
                chunks: self.chunks(size.max(1)).collect(),
            }
        }
    }

    /// `par_iter_mut` / `par_chunks_mut` / `par_sort_unstable` over mutable
    /// slices.
    pub trait ParallelSliceMutExt<T: Send> {
        /// Parallel iterator over mutable element references.
        fn par_iter_mut(&mut self) -> ParSliceMut<'_, T>;
        /// Parallel iterator over mutable `size`-element chunks.
        fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
        /// Unstable parallel merge sort on the persistent pool (sequential
        /// below [`crate::sort`]'s size threshold or on one thread).
        fn par_sort_unstable(&mut self)
        where
            T: Ord;
    }

    impl<T: Send> ParallelSliceMutExt<T> for [T] {
        fn par_iter_mut(&mut self) -> ParSliceMut<'_, T> {
            ParSliceMut { slice: self }
        }
        fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
            ParChunksMut {
                chunks: self.chunks_mut(size.max(1)).collect(),
            }
        }
        fn par_sort_unstable(&mut self)
        where
            T: Ord,
        {
            crate::sort::par_sort_unstable(self);
        }
    }
}

// Gated out under `chordal_model`: these tests drive the real pool (whose
// workers loop forever), which the finite model exploration cannot host;
// the model suites live in `deque::model_tests` and `pool::model_tests`.
#[cfg(all(test, not(chordal_model)))]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn range_for_each_visits_every_index_once() {
        let n = 10_000;
        let counters: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        (0..n).into_par_iter().for_each(|i| {
            counters[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn range_map_collect_preserves_order() {
        let v: Vec<usize> = (0..5_000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..5_000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn range_map_sum_and_max() {
        let s: usize = (0..1_000).into_par_iter().map(|i| i).sum();
        assert_eq!(s, 499_500);
        let m = (0..1_000).into_par_iter().map(|i| i ^ 0x2a).max();
        assert_eq!(m, (0..1_000).map(|i| i ^ 0x2a).max());
    }

    #[test]
    fn flat_map_iter_concatenates_in_order() {
        let v: Vec<usize> = (0..100)
            .into_par_iter()
            .flat_map_iter(|i| vec![i; i % 3])
            .collect();
        let expected: Vec<usize> = (0..100).flat_map(|i| vec![i; i % 3]).collect();
        assert_eq!(v, expected);
    }

    #[test]
    fn slice_combinators() {
        let data: Vec<u32> = (0..4_000).map(|i| (i * 7) % 1_000).collect();
        let doubled: Vec<u32> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled[17], data[17] * 2);
        assert_eq!(data.par_iter().copied().max(), data.iter().copied().max());
        let total: u32 = data.par_iter().sum();
        assert_eq!(total, data.iter().sum::<u32>());
    }

    #[test]
    fn slice_mut_for_each_and_sort() {
        let mut data: Vec<u64> = (0..3_000).rev().collect();
        data.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(data[0], 3_000);
        data.par_sort_unstable();
        assert_eq!(data[0], 1);
        assert_eq!(data[2_999], 3_000);
    }

    #[test]
    fn zipped_chunks_pair_up() {
        let src: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let mut dst = vec![0.0f64; 100];
        dst.par_chunks_mut(10)
            .zip(src.par_chunks(10))
            .for_each(|(out, row)| {
                for (o, &x) in out.iter_mut().zip(row) {
                    *o = x * 3.0;
                }
            });
        assert_eq!(dst[33], 99.0);
    }

    #[test]
    fn pool_install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        pool.install(|| {
            assert_eq!(current_num_threads(), 3);
        });
        assert_ne!(current_num_threads(), 0);
    }

    #[test]
    fn regions_reuse_pool_workers_instead_of_spawning() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        // Warm-up: the first region spawns the persistent workers.
        pool.install(|| (0..1_000).into_par_iter().for_each(|_| {}));
        let after_warmup = pool_spawned_threads();
        assert_eq!(
            after_warmup,
            pool_size(),
            "warm-up must spawn exactly the configured pool"
        );
        for round in 0..64 {
            pool.install(|| {
                let sum: usize = (0..10_000).into_par_iter().map(|i| i).sum();
                assert_eq!(sum, 49_995_000, "round {round}");
            });
        }
        assert_eq!(
            pool_spawned_threads(),
            after_warmup,
            "parallel regions after warm-up must not spawn threads"
        );
    }

    #[test]
    fn region_bodies_run_only_on_pool_workers_or_the_caller() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let seen: Mutex<std::collections::HashSet<std::thread::ThreadId>> =
            Mutex::new(std::collections::HashSet::new());
        for _ in 0..32 {
            pool.install(|| {
                (0..2_000).into_par_iter().for_each(|_| {
                    seen.lock().unwrap().insert(std::thread::current().id());
                });
            });
        }
        let distinct = seen.lock().unwrap().len();
        assert!(
            distinct <= pool_size() + 1,
            "{distinct} distinct executing threads exceeds pool ({}) + caller",
            pool_size()
        );
    }

    #[test]
    fn panics_propagate_to_the_submitting_thread() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let outcome = std::panic::catch_unwind(|| {
            pool.install(|| {
                (0..1_000).into_par_iter().for_each(|i| {
                    if i == 371 {
                        panic!("boom at {i}");
                    }
                });
            });
        });
        let payload = outcome.expect_err("worker panic must reach the caller");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(message.contains("boom at 371"), "payload: {message}");
        // The pool survives a panicked region and keeps executing work.
        pool.install(|| {
            let sum: usize = (0..100).into_par_iter().map(|i| i).sum();
            assert_eq!(sum, 4_950);
        });
    }

    #[test]
    fn nested_regions_complete_and_agree_with_serial() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let totals: Vec<usize> = pool.install(|| {
            (0..8usize)
                .into_par_iter()
                .map(|i| {
                    (0..1_000usize)
                        .into_par_iter()
                        .map(|j| i * j)
                        .sum::<usize>()
                })
                .collect()
        });
        let expected: Vec<usize> = (0..8usize)
            .map(|i| (0..1_000usize).map(|j| i * j).sum())
            .collect();
        assert_eq!(totals, expected);
    }

    #[test]
    fn deeply_nested_regions_do_not_deadlock_on_a_small_pool() {
        // Three levels of nesting: every waiting thread must keep helping
        // on the ticket queues, or a one-worker pool would deadlock here.
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let total: usize = pool.install(|| {
            (0..4usize)
                .into_par_iter()
                .map(|a| {
                    (0..4usize)
                        .into_par_iter()
                        .map(|b| {
                            (0..64usize)
                                .into_par_iter()
                                .map(|c| a ^ b ^ c)
                                .sum::<usize>()
                        })
                        .sum::<usize>()
                })
                .sum()
        });
        let expected: usize = (0..4usize)
            .map(|a| {
                (0..4usize)
                    .map(|b| (0..64usize).map(|c| a ^ b ^ c).sum::<usize>())
                    .sum::<usize>()
            })
            .sum();
        assert_eq!(total, expected);
    }
}
