//! Minimal in-tree substitute for the subset of the `criterion` API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so this crate provides
//! a small wall-clock harness behind the familiar criterion surface:
//! [`Criterion::benchmark_group`], `sample_size`/`measurement_time`/
//! `warm_up_time`/`throughput`, `bench_function`/`bench_with_input`,
//! [`Bencher::iter`] and the `criterion_group!`/`criterion_main!` macros.
//! Each benchmark runs a short warm-up, then takes timed samples until the
//! sample budget or the measurement time is exhausted, and prints
//! min/median/mean per benchmark. There is no statistical analysis or
//! HTML report — just honest, comparable numbers.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-implementation of `criterion::black_box` on `std::hint`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation (recorded and reported per element/byte).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark: a function name plus a parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Bencher {
    /// Calls `f` repeatedly, recording one timed sample per call, until the
    /// sample budget or measurement time is exhausted.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up: run untimed until the warm-up budget is spent.
        let warm_up_start = Instant::now();
        loop {
            black_box(f());
            if warm_up_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let measurement_start = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
            if measurement_start.elapsed() >= self.measurement_time {
                break;
            }
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement-time budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    fn run<F>(&mut self, label: String, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
        };
        f(&mut bencher);
        let mut samples = bencher.samples;
        if samples.is_empty() {
            println!("{}/{label}: no samples recorded", self.name);
            return;
        }
        samples.sort_unstable();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        let mut line = format!(
            "{}/{label}: min {min:?}  median {median:?}  mean {mean:?}  ({} samples)",
            self.name,
            samples.len()
        );
        if let Some(t) = self.throughput {
            let per_second = |count: u64| count as f64 / median.as_secs_f64();
            match t {
                Throughput::Elements(n) => {
                    line.push_str(&format!("  [{:.3e} elem/s]", per_second(n)))
                }
                Throughput::Bytes(n) => line.push_str(&format!("  [{:.3e} B/s]", per_second(n))),
            }
        }
        println!("{line}");
        self.criterion.benchmarks_run += 1;
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.to_string();
        self.run(label, f);
        self
    }

    /// Runs a benchmark over a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.to_string();
        self.run(label, |b| f(b, input));
        self
    }

    /// Ends the group (prints nothing extra; provided for API parity).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
            throughput: None,
        }
    }

    /// Runs a standalone benchmark with the default configuration.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(id.to_string());
        group.bench_function("default", f);
        group.finish();
        self
    }
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(50));
        group.warm_up_time(Duration::from_millis(1));
        let mut calls = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7usize, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        assert!(calls >= 3);
        assert_eq!(c.benchmarks_run, 2);
    }

    #[test]
    fn benchmark_id_formats_as_path() {
        assert_eq!(BenchmarkId::new("f", "p").to_string(), "f/p");
    }
}
