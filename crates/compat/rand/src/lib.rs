//! Minimal in-tree substitute for the subset of the `rand` API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so this crate provides
//! a deterministic [`rngs::StdRng`] (splitmix64-seeded xoshiro256++), the
//! [`Rng`]/[`SeedableRng`] traits with `gen`, `gen_range` and `gen_bool`,
//! the [`distributions::Distribution`] trait and [`seq::SliceRandom`]'s
//! `shuffle`/`choose`. Streams differ from the real crate, but every
//! consumer in this workspace only relies on seeded determinism and sound
//! distributions, not on byte-exact sequences.

use std::ops::{Range, RangeInclusive};

/// Low-level random source: everything is derived from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of seeded generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable uniformly from the full bit pattern (the `Standard`
/// distribution of the real crate).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges `gen_range` can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let span = self.end.checked_sub(self.start).expect("empty range");
                assert!(span > 0, "cannot sample from an empty range");
                // Multiply-shift bounded sampling (Lemire); bias is
                // negligible for the range sizes this workspace uses.
                let wide = (rng.next_u64() as u128) * (span as u128);
                self.start + (wide >> 64) as $t
            }
        }
    )+};
}

impl_int_sample_range!(u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        start + f64::sample_standard(rng) * (end - start)
    }
}

/// High-level sampling interface, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its full-range distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded through splitmix64 —
    /// the stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Distribution sampling (Box–Muller normals etc. are defined by callers).
pub mod distributions {
    use super::Rng;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value from `rng`.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..(i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_f64_is_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let x = rng.gen_range(-1.5..=2.5);
            assert!((-1.5..=2.5).contains(&x));
        }
    }

    #[test]
    fn shuffle_permutes_and_choose_picks_members() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: &[u32] = &[];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }
}
