//! Out-of-core storage conformance: every extraction algorithm (and the
//! repair post-pass) must produce byte-identical results whether the host
//! graph lives in a heap [`CsrGraph`] or in an mmap-backed
//! [`MmapCsrGraph`](maximal_chordal::graph::MmapCsrGraph) served from the
//! binary CSR file format.
//!
//! The pipeline under test is the real deployment path: generate → write
//! text edge list → stream-convert to binary
//! ([`convert_edge_list_to_binary`]) → mmap-load → extract. CI runs this
//! suite under the `CHORDAL_POOL_THREADS={1,2,8}` matrix, so the
//! storage-agnostic [`GraphRef`](maximal_chordal::graph::GraphRef) seam is
//! exercised by every pool size.

use maximal_chordal::core::repair::repair_maximality;
use maximal_chordal::graph::storage::{
    convert_edge_list_to_binary, detect_format, load_graph, FileFormat, LoadedGraph, MmapCsrGraph,
};
use maximal_chordal::graph::{io::write_edge_list_file, CsrGraph, GraphRef};
use maximal_chordal::prelude::*;

/// Text + binary on-disk copies of a generated graph, removed on drop.
struct DiskPair {
    txt: std::path::PathBuf,
    bin: std::path::PathBuf,
}

impl DiskPair {
    fn create(tag: &str, graph: &CsrGraph) -> DiskPair {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let txt = dir.join(format!("chordal_roundtrip_{pid}_{tag}.txt"));
        let bin = dir.join(format!("chordal_roundtrip_{pid}_{tag}.bin"));
        write_edge_list_file(graph, &txt).expect("writing text edge list");
        convert_edge_list_to_binary(&txt, &bin).expect("streaming conversion");
        DiskPair { txt, bin }
    }

    fn mmap(&self) -> MmapCsrGraph {
        MmapCsrGraph::open(&self.bin).expect("mmap-loading binary CSR")
    }
}

impl Drop for DiskPair {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.txt);
        let _ = std::fs::remove_file(&self.bin);
    }
}

fn workloads() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("rmat_g9", RmatParams::preset(RmatKind::G, 9, 17).generate()),
        (
            "grid9x7",
            maximal_chordal::generators::structured::grid(9, 7),
        ),
        ("bio_unt", GeneNetworkKind::Gse5140Unt.network(200, 3)),
    ]
}

#[test]
fn text_binary_mmap_roundtrip_preserves_the_graph() {
    for (tag, graph) in workloads() {
        let disk = DiskPair::create(tag, &graph);
        assert_eq!(detect_format(&disk.txt).unwrap(), FileFormat::Text);
        assert_eq!(detect_format(&disk.bin).unwrap(), FileFormat::Binary);
        let mapped = disk.mmap();
        mapped.verify_checksum().expect("converted file checksum");
        assert_eq!(
            mapped.to_csr_graph(),
            graph,
            "{tag}: binary round trip must reproduce the generated graph"
        );
        // The format-agnostic loader picks the right representation.
        let loaded = load_graph(&disk.bin, None).unwrap();
        assert!(matches!(loaded, LoadedGraph::Mapped(_)));
        assert_eq!(loaded.to_csr_graph(), graph);
    }
}

#[test]
fn every_algorithm_is_byte_identical_on_mmap_and_heap() {
    for (tag, graph) in workloads() {
        let disk = DiskPair::create(tag, &graph);
        let mapped = disk.mmap();
        for algorithm in Algorithm::ALL {
            // Both adjacency variants of the deterministic serial engine;
            // parallel engines are covered (with determinism caveats) by
            // the conformance suite — here the contract under test is the
            // storage seam, so results must match bit for bit.
            for variant in [AdjacencyMode::Sorted, AdjacencyMode::Unsorted] {
                let config = ExtractorConfig::default()
                    .with_algorithm(algorithm)
                    .with_adjacency(variant)
                    .with_engine(Engine::serial());
                let from_heap = ExtractionSession::new(config.clone()).extract(&graph);
                let from_mmap = ExtractionSession::new(config).extract(&mapped);
                assert_eq!(
                    from_heap,
                    from_mmap,
                    "{tag}/{algorithm}/{}: mmap extraction diverged from heap",
                    variant.label()
                );
            }
        }
    }
}

#[test]
fn parallel_pool_extraction_agrees_across_representations() {
    // Synchronous semantics are deterministic on every engine, so heap and
    // mmap runs under the CI pool matrix must agree exactly.
    for (tag, graph) in workloads() {
        let disk = DiskPair::create(tag, &graph);
        let mapped = disk.mmap();
        let config = ExtractorConfig::default()
            .with_semantics(Semantics::Synchronous)
            .with_engine(Engine::chunked(4));
        let from_heap = ExtractionSession::new(config.clone()).extract(&graph);
        let from_mmap = ExtractionSession::new(config).extract(&mapped);
        assert_eq!(from_heap, from_mmap, "{tag}: pool run diverged");
    }
}

#[test]
fn repair_pass_is_byte_identical_on_mmap_and_heap() {
    for (tag, graph) in workloads() {
        let disk = DiskPair::create(tag, &graph);
        let mapped = disk.mmap();
        let config = ExtractorConfig::serial(AdjacencyMode::Sorted);
        let base = ExtractionSession::new(config).extract(&graph);
        let on_heap = repair_maximality(&graph, base.edges(), None);
        let on_mmap = repair_maximality(&mapped, base.edges(), None);
        assert_eq!(
            on_heap, on_mmap,
            "{tag}: repair outcome diverged between representations"
        );
        // End to end: the repair-wrapped registry extractor over the mmap.
        let repaired_config = ExtractorConfig::serial(AdjacencyMode::Sorted).with_repair(true);
        let heap_repaired = ExtractionSession::new(repaired_config.clone()).extract(&graph);
        let mmap_repaired = ExtractionSession::new(repaired_config).extract(&mapped);
        assert_eq!(
            heap_repaired, mmap_repaired,
            "{tag}: repaired extraction diverged"
        );
    }
}

#[test]
fn batch_scheduler_handles_mixed_heap_and_mmap_views() {
    let graphs = workloads();
    let disks: Vec<DiskPair> = graphs
        .iter()
        .map(|(tag, g)| DiskPair::create(&format!("batch_{tag}"), g))
        .collect();
    let mapped: Vec<MmapCsrGraph> = disks.iter().map(DiskPair::mmap).collect();
    let config = ExtractorConfig::default()
        .with_semantics(Semantics::Synchronous)
        .with_engine(Engine::chunked(4));
    // All-heap batch vs the same batch served from mmaps, interleaved with
    // heap views — placement and results must not depend on storage.
    let heap_views: Vec<GraphRef<'_>> = graphs.iter().map(|(_, g)| g.into()).collect();
    let mut mixed_views: Vec<GraphRef<'_>> = mapped.iter().map(GraphRef::from).collect();
    mixed_views[1] = heap_views[1];
    let heap_results = ExtractionSession::new(config.clone()).extract_batch(&heap_views);
    let mixed_results = ExtractionSession::new(config).extract_batch(&mixed_views);
    assert_eq!(heap_results, mixed_results, "mixed batch diverged");
}

#[test]
fn loader_rejects_corrupt_truncated_and_wrong_version_files() {
    let (_, graph) = &workloads()[0];
    let disk = DiskPair::create("reject", graph);
    let bytes = std::fs::read(&disk.bin).unwrap();
    let dir = std::env::temp_dir();
    let pid = std::process::id();

    // Corrupt magic.
    let bad_magic = dir.join(format!("chordal_roundtrip_{pid}_badmagic.bin"));
    let mut copy = bytes.clone();
    copy[0] ^= 0xFF;
    std::fs::write(&bad_magic, &copy).unwrap();
    assert!(MmapCsrGraph::open(&bad_magic).is_err());
    // ... and a forced-binary load of a corrupt file fails rather than
    // falling back to text parsing.
    assert!(load_graph(&bad_magic, Some(FileFormat::Binary)).is_err());
    let _ = std::fs::remove_file(&bad_magic);

    // Unsupported version.
    let bad_version = dir.join(format!("chordal_roundtrip_{pid}_badversion.bin"));
    let mut copy = bytes.clone();
    copy[8] = 0xFE;
    std::fs::write(&bad_version, &copy).unwrap();
    assert!(MmapCsrGraph::open(&bad_version).is_err());
    let _ = std::fs::remove_file(&bad_version);

    // Truncated payload.
    let truncated = dir.join(format!("chordal_roundtrip_{pid}_truncated.bin"));
    std::fs::write(&truncated, &bytes[..bytes.len() - 4]).unwrap();
    assert!(MmapCsrGraph::open(&truncated).is_err());
    let _ = std::fs::remove_file(&truncated);

    // Flipped adjacency byte: structurally valid, caught by the checksum.
    let corrupt = dir.join(format!("chordal_roundtrip_{pid}_corrupt.bin"));
    let mut copy = bytes.clone();
    let last = copy.len() - 1;
    copy[last] ^= 0x01;
    std::fs::write(&corrupt, &copy).unwrap();
    if let Ok(mapped) = MmapCsrGraph::open(&corrupt) {
        assert!(mapped.verify_checksum().is_err());
    }
    let _ = std::fs::remove_file(&corrupt);
}
