//! Trait-conformance suite for the `ChordalExtractor` registry: every
//! [`Algorithm`] × [`Engine`] (serial, chunked pool, rayon) × [`Semantics`]
//! combination is driven through the same [`ExtractionSession`] API and
//! checked against the guarantees the registry advertises —
//! chordality ([`Algorithm::guarantees_chordal`]), maximality
//! ([`Algorithm::guarantees_maximal`]), and that reusing a session's
//! [`Workspace`](maximal_chordal::core::Workspace) across consecutive runs
//! yields exactly what fresh runs yield.

use maximal_chordal::core::verify::{check_maximality, MaximalityReport};
use maximal_chordal::prelude::*;

/// One engine per scheduling style, small enough to keep the full matrix
/// fast.
fn engines() -> Vec<Engine> {
    vec![
        Engine::serial(),
        Engine::chunked_with_grain(3, 16),
        Engine::rayon(3),
    ]
}

fn workloads() -> Vec<(String, CsrGraph)> {
    let mut graphs = vec![(
        "RMAT-G(8)".to_string(),
        RmatParams::preset(RmatKind::G, 8, 17).generate(),
    )];
    graphs.push((
        "grid(8x7)".to_string(),
        maximal_chordal::generators::structured::grid(8, 7),
    ));
    graphs.push((
        "GSE5140(UNT)-mini".to_string(),
        GeneNetworkKind::Gse5140Unt.network(220, 3),
    ));
    graphs
}

/// Every cell of the Algorithm × Engine × Semantics matrix, as a session.
fn matrix() -> Vec<(String, ExtractorConfig)> {
    let mut cells = Vec::new();
    for algorithm in Algorithm::ALL {
        for engine in engines() {
            for semantics in [Semantics::Synchronous, Semantics::Asynchronous] {
                let config = ExtractorConfig::default()
                    .with_algorithm(algorithm)
                    .with_engine(engine.clone())
                    .with_semantics(semantics);
                let label = format!(
                    "{algorithm}/{}x{}/{}",
                    engine.name(),
                    engine.threads(),
                    semantics.label()
                );
                cells.push((label, config));
            }
        }
    }
    cells
}

#[test]
fn every_algorithm_engine_semantics_cell_honours_its_guarantees() {
    for (name, graph) in workloads() {
        for (label, config) in matrix() {
            let algorithm = config.algorithm;
            let mut session = ExtractionSession::new(config);
            assert_eq!(session.extractor_name(), algorithm.name());
            let result = session.extract(&graph);
            // Output edges always come from the host graph.
            for &(u, v) in result.edges() {
                assert!(graph.has_edge(u, v), "{name} {label}: foreign edge");
            }
            assert_eq!(result.num_vertices(), graph.num_vertices());
            // Chordality, where the registry guarantees it. (The partitioned
            // baseline intentionally does not — that deficiency is the
            // paper's motivation for Algorithm 1.)
            if algorithm.guarantees_chordal() {
                assert!(
                    is_chordal(&result.subgraph(&graph)),
                    "{name} {label}: non-chordal output"
                );
            }
            // Maximality, where guaranteed; near-maximality everywhere else
            // that promises chordal output (bounded sampled violations).
            if algorithm.guarantees_maximal() {
                assert!(
                    check_maximality(&graph, result.edges(), Some(120), 11).is_maximal(),
                    "{name} {label}: output must be maximal"
                );
            } else if algorithm.guarantees_chordal() {
                let sample = 120;
                let report = check_maximality(&graph, result.edges(), Some(sample), 11);
                let violations = match report {
                    MaximalityReport::Maximal => 0,
                    MaximalityReport::Violations(v) => v.len(),
                };
                assert!(
                    violations <= sample,
                    "{name} {label}: impossible violation count"
                );
            }
        }
    }
}

#[test]
fn workspace_reuse_across_consecutive_runs_equals_fresh_runs() {
    // For every deterministic cell of the matrix: run the same session
    // twice back to back (second run reuses the grown workspace) and once
    // with a fresh session; all three must agree bit for bit, and the
    // reused workspace must not allocate again.
    for (name, graph) in workloads() {
        for (label, config) in matrix() {
            if !config.algorithm.is_deterministic(&config) {
                continue;
            }
            let mut session = ExtractionSession::new(config.clone());
            let first = session.extract(&graph);
            let allocations = session.workspace().allocations();
            let second = session.extract(&graph);
            let fresh = ExtractionSession::new(config).extract(&graph);
            assert_eq!(first.edges(), second.edges(), "{name} {label}");
            assert_eq!(first.edges(), fresh.edges(), "{name} {label}");
            assert_eq!(first.iterations, second.iterations, "{name} {label}");
            assert_eq!(
                session.workspace().allocations(),
                allocations,
                "{name} {label}: rerun on the same graph must not allocate"
            );
        }
    }
}

#[test]
fn nondeterministic_cells_still_produce_valid_output_on_reuse() {
    // Asynchronous parallel runs may legally differ between schedules, but
    // a reused workspace must never corrupt the invariants.
    let graph = RmatParams::preset(RmatKind::B, 8, 29).generate();
    let config = ExtractorConfig::default()
        .with_engine(Engine::rayon(4))
        .with_semantics(Semantics::Asynchronous);
    let mut session = ExtractionSession::new(config);
    for round in 0..3 {
        let result = session.extract(&graph);
        assert!(
            is_chordal(&result.subgraph(&graph)),
            "round {round}: non-chordal"
        );
        for &(u, v) in result.edges() {
            assert!(graph.has_edge(u, v), "round {round}");
        }
    }
}

#[test]
fn trait_objects_dispatch_uniformly() {
    // The registry hands out boxed trait objects usable without knowing the
    // concrete type — the shape the CLI and benches rely on.
    let graph = maximal_chordal::generators::structured::cycle(12);
    let extractors: Vec<Box<dyn ChordalExtractor>> = Algorithm::ALL
        .iter()
        .map(|algorithm| {
            ExtractorConfig::serial(AdjacencyMode::Sorted)
                .with_algorithm(*algorithm)
                .build_extractor()
        })
        .collect();
    for (algorithm, extractor) in Algorithm::ALL.iter().zip(&extractors) {
        assert_eq!(extractor.name(), algorithm.name());
        let result = extractor.extract(&graph);
        assert!(result.num_chordal_edges() >= 11, "{algorithm}");
    }
}

#[test]
fn batch_extraction_covers_every_algorithm() {
    let graphs: Vec<CsrGraph> = (0..4)
        .map(|seed| RmatParams::preset(RmatKind::Er, 7, seed).generate())
        .collect();
    let refs: Vec<&CsrGraph> = graphs.iter().collect();
    for algorithm in Algorithm::ALL {
        let config = ExtractorConfig::default()
            .with_algorithm(algorithm)
            .with_engine(Engine::chunked(3))
            .with_semantics(Semantics::Synchronous);
        let batch = ExtractionSession::new(config.clone()).extract_batch(&refs);
        assert_eq!(batch.len(), graphs.len(), "{algorithm}");
        // Deterministic algorithms must match their single-graph runs
        // slot for slot. The comparison config pins the partition count to
        // what the batch resolved it to (one per configured-engine worker),
        // mirroring extract_batch's documented semantics.
        if algorithm.is_deterministic(&config) {
            let serial_config = config
                .clone()
                .with_partitions(
                    config.effective_partitions(),
                    maximal_chordal::core::partitioned::PartitionStrategy::Blocks,
                )
                .with_engine(Engine::serial());
            let mut single = ExtractionSession::new(serial_config);
            for (graph, from_batch) in graphs.iter().zip(&batch) {
                assert_eq!(
                    single.extract(graph).edges(),
                    from_batch.edges(),
                    "{algorithm}"
                );
            }
        }
    }
}
