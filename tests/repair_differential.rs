//! Differential and property suite for the maximality-repair strategies.
//!
//! The incremental repair strategy (maintained chordal subgraph + separator
//! test) must be observably identical to the scratch baseline (full
//! re-verification per candidate): same repaired edge sets, same added
//! edges, same examined counts — across every algorithm of the registry and
//! under every pool size of the CI matrix (`CHORDAL_POOL_THREADS={1,2,8}`).
//! On top of the differential checks, a property sweep asserts the repaired
//! output is *strictly maximal* (no rejected edge remains addable) and that
//! repeated repairs through a session stop allocating.

use maximal_chordal::core::repair::{repair_maximality_with, RepairStrategy};
use maximal_chordal::core::verify::{check_maximality, is_chordal};
use maximal_chordal::core::{Algorithm, ExtractionSession, ExtractorConfig, Semantics, Workspace};
use maximal_chordal::generators::rmat::{RmatKind, RmatParams};
use maximal_chordal::generators::structured;
use maximal_chordal::graph::CsrGraph;

fn workloads() -> Vec<(String, CsrGraph)> {
    let mut graphs = vec![
        ("grid-7x7".to_string(), structured::grid(7, 7)),
        ("cycle-12".to_string(), structured::cycle(12)),
        (
            "bipartite-4x5".to_string(),
            structured::complete_bipartite(4, 5),
        ),
    ];
    for seed in 0..3u64 {
        for kind in [RmatKind::Er, RmatKind::G, RmatKind::B] {
            graphs.push((
                format!("rmat-{kind:?}-{seed}"),
                RmatParams::preset(kind, 7, seed).generate(),
            ));
        }
    }
    graphs
}

#[test]
fn incremental_and_scratch_repair_are_identical_across_algorithms() {
    let mut workspace = Workspace::new();
    for algorithm in Algorithm::ALL {
        let config = ExtractorConfig::default()
            .with_engine(maximal_chordal::runtime::Engine::serial())
            .with_algorithm(algorithm);
        let mut session = ExtractionSession::new(config);
        for (name, graph) in workloads() {
            let base = session.extract(&graph);
            let incremental = repair_maximality_with(
                &graph,
                base.edges(),
                None,
                RepairStrategy::Incremental,
                &mut workspace,
            );
            let scratch = repair_maximality_with(
                &graph,
                base.edges(),
                None,
                RepairStrategy::Scratch,
                &mut workspace,
            );
            assert_eq!(
                incremental, scratch,
                "{algorithm}/{name}: strategies must produce byte-identical outcomes"
            );
        }
    }
}

#[test]
fn session_level_repair_strategies_agree_under_the_configured_pool() {
    // Deterministic (synchronous) parallel extraction + repair through the
    // registry: the two strategies must produce identical results whatever
    // CHORDAL_POOL_THREADS the CI matrix sets.
    for algorithm in [Algorithm::Parallel, Algorithm::Reference] {
        let base = ExtractorConfig::default()
            .with_algorithm(algorithm)
            .with_semantics(Semantics::Synchronous)
            .with_repair(true);
        let mut incremental = ExtractionSession::new(
            base.clone()
                .with_repair_strategy(RepairStrategy::Incremental),
        );
        let mut scratch =
            ExtractionSession::new(base.with_repair_strategy(RepairStrategy::Scratch));
        for (name, graph) in workloads() {
            let a = incremental.extract(&graph);
            let b = scratch.extract(&graph);
            assert_eq!(
                a.edges(),
                b.edges(),
                "{algorithm}/{name}: session-level strategy mismatch"
            );
        }
    }
}

#[test]
fn repaired_output_is_strictly_maximal() {
    // Property: after repair, no rejected edge remains addable. Verified
    // with the independent maximality checker for every algorithm whose
    // output the repair pass guarantees to keep chordal.
    for algorithm in Algorithm::ALL {
        let config = ExtractorConfig::default()
            .with_engine(maximal_chordal::runtime::Engine::serial())
            .with_algorithm(algorithm)
            .with_repair(true);
        let mut session = ExtractionSession::new(config);
        for seed in 0..3u64 {
            let graph = RmatParams::preset(RmatKind::G, 7, seed).generate();
            let result = session.extract(&graph);
            if algorithm.guarantees_chordal() {
                assert!(
                    is_chordal(&result.subgraph(&graph)),
                    "{algorithm} seed {seed}: repaired output must stay chordal"
                );
            }
            assert!(
                check_maximality(&graph, result.edges(), None, 0).is_maximal(),
                "{algorithm} seed {seed}: a rejected edge is still addable after repair"
            );
        }
    }
}

#[test]
fn repeated_session_repairs_stop_allocating() {
    // The allocation/regression lock of the incremental strategy: a warm
    // `alg1 + repair` session must not grow its workspace on subsequent
    // extractions — per-candidate work never rebuilds the subgraph.
    let graph = RmatParams::preset(RmatKind::B, 9, 3).generate();
    let mut session = ExtractionSession::new(
        ExtractorConfig::default()
            .with_engine(maximal_chordal::runtime::Engine::serial())
            .with_repair(true),
    );
    let first = session.extract(&graph);
    let allocations = session.workspace().allocations();
    for _ in 0..2 {
        let again = session.extract(&graph);
        assert_eq!(again.edges(), first.edges());
    }
    assert_eq!(
        session.workspace().allocations(),
        allocations,
        "repeated repairs over the same graph must reuse every buffer"
    );
}

#[test]
fn repair_budget_counts_distinct_candidates_for_both_strategies() {
    let graph = structured::grid(8, 8);
    let mut session = ExtractionSession::new(
        ExtractorConfig::default().with_engine(maximal_chordal::runtime::Engine::serial()),
    );
    let base = session.extract(&graph);
    let mut workspace = Workspace::new();
    for strategy in [RepairStrategy::Incremental, RepairStrategy::Scratch] {
        for limit in [0usize, 1, 5, 1_000] {
            let outcome =
                repair_maximality_with(&graph, base.edges(), Some(limit), strategy, &mut workspace);
            assert!(
                outcome.examined <= limit,
                "{strategy}: budget {limit} exceeded ({} examined)",
                outcome.examined
            );
            assert!(outcome.added.len() <= outcome.examined);
        }
    }
}
