//! Property-based tests over the core invariants of the workspace, using
//! randomly generated graphs.

use maximal_chordal::graph::subgraph::edge_subgraph;
use maximal_chordal::graph::traversal::connected_components;
use maximal_chordal::prelude::*;
use proptest::prelude::*;

/// Strategy: a random simple graph given as (n, edge list) with n in 2..40.
fn arbitrary_graph() -> impl Strategy<Value = CsrGraph> {
    (2usize..40).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=max_edges.min(160)).prop_map(
            move |pairs| {
                let mut builder = GraphBuilder::new(n);
                for (u, v) in pairs {
                    if u != v {
                        builder.add_edge(u, v);
                    }
                }
                builder.build()
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Algorithm 1 always returns a chordal subgraph whose edges come from
    /// the input, for every engine and both semantics.
    #[test]
    fn extraction_always_chordal(graph in arbitrary_graph(), use_async in any::<bool>(), threads in 1usize..5) {
        let config = ExtractorConfig {
            engine: Engine::rayon(threads),
            adjacency: AdjacencyMode::Sorted,
            semantics: if use_async { Semantics::Asynchronous } else { Semantics::Synchronous },
            record_stats: false,
        };
        let result = MaximalChordalExtractor::new(config).extract(&graph);
        let sub = result.subgraph(&graph);
        prop_assert!(is_chordal(&sub));
        for &(u, v) in result.edges() {
            prop_assert!(graph.has_edge(u, v));
        }
    }

    /// The synchronous parallel result equals the sequential reference.
    #[test]
    fn synchronous_matches_reference(graph in arbitrary_graph(), threads in 1usize..5) {
        let reference = maximal_chordal::core::reference::extract_reference(&graph);
        let config = ExtractorConfig {
            engine: Engine::chunked_with_grain(threads, 4),
            adjacency: AdjacencyMode::Sorted,
            semantics: Semantics::Synchronous,
            record_stats: false,
        };
        let result = MaximalChordalExtractor::new(config).extract(&graph);
        prop_assert_eq!(result.edges(), reference.edges());
    }

    /// The Dearing baseline returns a chordal and maximal subgraph.
    #[test]
    fn dearing_is_chordal_and_maximal(graph in arbitrary_graph()) {
        let result = extract_dearing(&graph);
        let sub = result.subgraph(&graph);
        prop_assert!(is_chordal(&sub));
        prop_assert!(check_maximality(&graph, result.edges(), None, 0).is_maximal());
    }

    /// Stitching never breaks chordality and never merges further than the
    /// host graph's own components.
    #[test]
    fn stitching_preserves_chordality(graph in arbitrary_graph()) {
        let result = extract_maximal_chordal_serial(&graph);
        let stitched = stitched_edge_set(&graph, result.edges());
        let sub = edge_subgraph(&graph, &stitched);
        prop_assert!(is_chordal(&sub));
        prop_assert_eq!(
            connected_components(&sub).count,
            connected_components(&graph).count
        );
    }

    /// CSR construction, edge listing and reconstruction round-trip.
    #[test]
    fn csr_roundtrip(graph in arbitrary_graph()) {
        let edges: Vec<_> = graph.edges().collect();
        let rebuilt = CsrGraph::from_canonical_edges(graph.num_vertices(), &edges);
        prop_assert_eq!(&graph, &rebuilt);
        prop_assert_eq!(graph.num_edges(), edges.len());
    }

    /// The chordality checker agrees with a brute-force chordless-cycle
    /// search on small graphs.
    #[test]
    fn chordality_checker_matches_bruteforce(graph in (2usize..9).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=n * (n - 1) / 2)
            .prop_map(move |pairs| {
                let mut b = GraphBuilder::new(n);
                for (u, v) in pairs {
                    if u != v {
                        b.add_edge(u, v);
                    }
                }
                b.build()
            })
    })) {
        prop_assert_eq!(is_chordal(&graph), bruteforce_is_chordal(&graph));
    }
}

/// Exponential-time oracle: a graph is chordal iff it has no chordless cycle
/// of length ≥ 4. Searches all simple cycles via DFS (fine for ≤ 8 vertices).
fn bruteforce_is_chordal(graph: &CsrGraph) -> bool {
    let n = graph.num_vertices();
    // Enumerate all subsets of size >= 4 and check whether the induced
    // subgraph is a cycle (every vertex degree 2, connected) without chords.
    let vertices: Vec<u32> = (0..n as u32).collect();
    let mut found_chordless_cycle = false;
    let total_subsets = 1usize << n;
    for mask in 0..total_subsets {
        let subset: Vec<u32> = vertices
            .iter()
            .copied()
            .filter(|&v| mask & (1 << v) != 0)
            .collect();
        if subset.len() < 4 {
            continue;
        }
        // Induced subgraph degrees.
        let mut degrees = vec![0usize; subset.len()];
        let mut edge_count = 0usize;
        for (i, &u) in subset.iter().enumerate() {
            for (j, &v) in subset.iter().enumerate().skip(i + 1) {
                if graph.has_edge(u, v) {
                    degrees[i] += 1;
                    degrees[j] += 1;
                    edge_count += 1;
                }
            }
        }
        // An induced chordless cycle has exactly |S| edges, every degree 2,
        // and is connected.
        if edge_count == subset.len() && degrees.iter().all(|&d| d == 2) {
            let induced = maximal_chordal::graph::subgraph::induced_subgraph(graph, &subset);
            if connected_components(&induced.graph).count == 1 {
                found_chordless_cycle = true;
                break;
            }
        }
    }
    !found_chordless_cycle
}
