//! Property-style tests over the core invariants of the workspace, using
//! deterministic seeded random graphs.
//!
//! The external `proptest` crate is unavailable in this build environment,
//! so the same invariants are exercised with an explicit seeded sweep: every
//! case draws a random simple graph from the in-tree `rand` substitute and
//! asserts the property; failures print the offending seed so the case can
//! be replayed.

use maximal_chordal::graph::subgraph::edge_subgraph;
use maximal_chordal::graph::traversal::connected_components;
use maximal_chordal::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of random cases per property (mirrors the old proptest config).
const CASES: u64 = 48;

/// Draws a random simple graph with `2..max_n` vertices and up to
/// `max_edges` undirected edges (self loops discarded, duplicates merged).
fn random_graph(rng: &mut StdRng, max_n: usize, max_edges: usize) -> CsrGraph {
    let n = rng.gen_range(2..max_n);
    let cap = (n * (n - 1) / 2).min(max_edges);
    let m = rng.gen_range(0..cap.max(1) + 1);
    let mut builder = GraphBuilder::new(n);
    for _ in 0..m {
        let u = rng.gen_range(0..n) as u32;
        let v = rng.gen_range(0..n) as u32;
        if u != v {
            builder.add_edge(u, v);
        }
    }
    builder.build()
}

#[test]
fn extraction_always_chordal() {
    // Algorithm 1 always returns a chordal subgraph whose edges come from
    // the input, for every engine and both semantics.
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = random_graph(&mut rng, 40, 160);
        let threads = rng.gen_range(1..5usize);
        let semantics = if rng.gen_bool(0.5) {
            Semantics::Asynchronous
        } else {
            Semantics::Synchronous
        };
        let config = ExtractorConfig::default()
            .with_engine(Engine::rayon(threads))
            .with_semantics(semantics);
        let result = ExtractionSession::new(config).extract(&graph);
        let sub = result.subgraph(&graph);
        assert!(is_chordal(&sub), "seed {seed}");
        for &(u, v) in result.edges() {
            assert!(graph.has_edge(u, v), "seed {seed}: foreign edge ({u},{v})");
        }
    }
}

#[test]
fn synchronous_matches_reference() {
    // The synchronous parallel result equals the sequential reference.
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5EED ^ seed);
        let graph = random_graph(&mut rng, 40, 160);
        let threads = rng.gen_range(1..5usize);
        let reference = maximal_chordal::core::reference::extract_reference(&graph);
        let config = ExtractorConfig::default()
            .with_engine(Engine::chunked_with_grain(threads, 4))
            .with_semantics(Semantics::Synchronous);
        let result = ExtractionSession::new(config).extract(&graph);
        assert_eq!(result.edges(), reference.edges(), "seed {seed}");
    }
}

#[test]
fn dearing_is_chordal_and_maximal() {
    // The Dearing baseline returns a chordal and maximal subgraph.
    let mut session = ExtractionSession::with_algorithm(Algorithm::Dearing);
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xD0_0D ^ seed);
        let graph = random_graph(&mut rng, 40, 160);
        let result = session.extract(&graph);
        let sub = result.subgraph(&graph);
        assert!(is_chordal(&sub), "seed {seed}");
        assert!(
            check_maximality(&graph, result.edges(), None, 0).is_maximal(),
            "seed {seed}"
        );
    }
}

#[test]
fn stitching_preserves_chordality() {
    // Stitching never breaks chordality and never merges further than the
    // host graph's own components.
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x517C ^ seed);
        let graph = random_graph(&mut rng, 40, 160);
        let result = extract_maximal_chordal_serial(&graph);
        let stitched = stitched_edge_set(&graph, result.edges());
        let sub = edge_subgraph(&graph, &stitched);
        assert!(is_chordal(&sub), "seed {seed}");
        assert_eq!(
            connected_components(&sub).count,
            connected_components(&graph).count,
            "seed {seed}"
        );
    }
}

#[test]
fn csr_roundtrip() {
    // CSR construction, edge listing and reconstruction round-trip.
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xC5_12 ^ seed);
        let graph = random_graph(&mut rng, 40, 160);
        let edges: Vec<_> = graph.edges().collect();
        let rebuilt = CsrGraph::from_canonical_edges(graph.num_vertices(), &edges);
        assert_eq!(&graph, &rebuilt, "seed {seed}");
        assert_eq!(graph.num_edges(), edges.len(), "seed {seed}");
    }
}

#[test]
fn batch_extraction_matches_individual_runs() {
    // extract_batch returns, per slot, exactly what a deterministic
    // single-graph extraction of that slot returns.
    for seed in 0..8 {
        let mut rng = StdRng::seed_from_u64(0xBA7C ^ seed);
        let graphs: Vec<CsrGraph> = (0..5).map(|_| random_graph(&mut rng, 30, 120)).collect();
        let refs: Vec<&CsrGraph> = graphs.iter().collect();
        let config = ExtractorConfig::default()
            .with_engine(Engine::rayon(3))
            .with_semantics(Semantics::Synchronous);
        let batch = ExtractionSession::new(config).extract_batch(&refs);
        for (i, (graph, result)) in graphs.iter().zip(&batch).enumerate() {
            let expected = maximal_chordal::core::reference::extract_reference(graph);
            assert_eq!(result.edges(), expected.edges(), "seed {seed} slot {i}");
        }
    }
}

#[test]
fn chordality_checker_matches_bruteforce() {
    // The chordality checker agrees with a brute-force chordless-cycle
    // search on small graphs.
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xB1_7E ^ seed);
        let graph = random_graph(&mut rng, 9, 28);
        assert_eq!(
            is_chordal(&graph),
            bruteforce_is_chordal(&graph),
            "seed {seed}"
        );
    }
}

/// Exponential-time oracle: a graph is chordal iff it has no chordless cycle
/// of length ≥ 4. Searches all vertex subsets for induced cycles (fine for
/// ≤ 8 vertices).
fn bruteforce_is_chordal(graph: &CsrGraph) -> bool {
    let n = graph.num_vertices();
    // Enumerate all subsets of size >= 4 and check whether the induced
    // subgraph is a cycle (every vertex degree 2, connected) without chords.
    let vertices: Vec<u32> = (0..n as u32).collect();
    let mut found_chordless_cycle = false;
    let total_subsets = 1usize << n;
    for mask in 0..total_subsets {
        let subset: Vec<u32> = vertices
            .iter()
            .copied()
            .filter(|&v| mask & (1 << v) != 0)
            .collect();
        if subset.len() < 4 {
            continue;
        }
        // Induced subgraph degrees.
        let mut degrees = vec![0usize; subset.len()];
        let mut edge_count = 0usize;
        for (i, &u) in subset.iter().enumerate() {
            for (j, &v) in subset.iter().enumerate().skip(i + 1) {
                if graph.has_edge(u, v) {
                    degrees[i] += 1;
                    degrees[j] += 1;
                    edge_count += 1;
                }
            }
        }
        // An induced chordless cycle has exactly |S| edges, every degree 2,
        // and is connected.
        if edge_count == subset.len() && degrees.iter().all(|&d| d == 2) {
            let induced = maximal_chordal::graph::subgraph::induced_subgraph(graph, &subset);
            if connected_components(&induced.graph).count == 1 {
                found_chordless_cycle = true;
                break;
            }
        }
    }
    !found_chordless_cycle
}
