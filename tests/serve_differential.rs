//! Differential suite: `chordal serve` responses must be **byte-identical**
//! to the `chordal extract` CLI output for the same graph, algorithm and
//! configuration.
//!
//! The expected bytes are produced in-process through the exact call
//! sequence `cmd_extract` runs (`load_graph` → `ExtractionSession::extract`
//! → `edge_subgraph` → `write_edge_list`), then compared against the
//! `payload=edges` bytes the server frames. The matrix covers all five
//! algorithm configurations (alg1, reference, dearing, partitioned,
//! alg1+repair), both on-disk representations (text edge list and binary
//! CSR), and both graph addressing forms (`path=` and resident
//! `graph=<hash>`). Extractions use `semantics=sync`, the deterministic
//! mode, so expected bytes are well-defined under any
//! `CHORDAL_POOL_THREADS` setting — CI runs this suite across the
//! {1,2,8} matrix.

use maximal_chordal::core::partitioned::PartitionStrategy;
use maximal_chordal::graph::io::{write_edge_list, write_edge_list_file};
use maximal_chordal::graph::storage::{convert_edge_list_to_binary, load_graph};
use maximal_chordal::graph::subgraph::edge_subgraph;
use maximal_chordal::prelude::*;
use maximal_chordal::serve::{ServeClient, ServeConfig, Server, ServerHandle};

/// One algorithm configuration of the differential matrix: the request
/// arguments and the matching in-process [`ExtractorConfig`].
struct Case {
    label: &'static str,
    request_args: String,
    config: ExtractorConfig,
}

fn cases(engine: &str, threads: usize) -> Vec<Case> {
    let base = || {
        ExtractorConfig::default()
            .with_semantics(Semantics::Synchronous)
            .with_engine_name(engine, threads)
            .expect("engine spelling")
    };
    let shared = format!("semantics=sync engine={engine} threads={threads}");
    vec![
        Case {
            label: "alg1",
            request_args: format!("algorithm=alg1 {shared}"),
            config: base().with_algorithm(Algorithm::Parallel),
        },
        Case {
            label: "reference",
            request_args: format!("algorithm=reference {shared}"),
            config: base().with_algorithm(Algorithm::Reference),
        },
        Case {
            label: "dearing",
            request_args: format!("algorithm=dearing {shared}"),
            config: base().with_algorithm(Algorithm::Dearing),
        },
        Case {
            label: "partitioned",
            request_args: format!("algorithm=partitioned partitions=4 {shared}"),
            config: base()
                .with_algorithm(Algorithm::Partitioned)
                .with_partitions(4, PartitionStrategy::Blocks),
        },
        Case {
            label: "alg1+repair",
            request_args: format!("algorithm=alg1 repair=true {shared}"),
            config: base().with_algorithm(Algorithm::Parallel).with_repair(true),
        },
    ]
}

/// The byte-exact output `chordal extract --out` would write for this
/// graph file and configuration.
fn cli_path_bytes(path: &std::path::Path, config: ExtractorConfig) -> Vec<u8> {
    let loaded = load_graph(path, None).expect("loading input");
    let view = loaded.as_graph_ref();
    let mut session = ExtractionSession::new(config);
    let result = session.extract(view);
    let sub = edge_subgraph(view, result.edges());
    let mut bytes = Vec::new();
    write_edge_list(&sub, &mut bytes).expect("serialising to memory");
    bytes
}

struct Fixture {
    handle: ServerHandle,
    txt: std::path::PathBuf,
    bin: std::path::PathBuf,
}

impl Fixture {
    fn start(tag: &str, graph: &CsrGraph) -> Fixture {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let txt = dir.join(format!("chordal_serve_diff_{pid}_{tag}.txt"));
        let bin = dir.join(format!("chordal_serve_diff_{pid}_{tag}.bin"));
        write_edge_list_file(graph, &txt).expect("writing text edge list");
        convert_edge_list_to_binary(&txt, &bin).expect("streaming conversion");
        let handle = Server::start(ServeConfig::default()).expect("starting server");
        Fixture { handle, txt, bin }
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        self.handle.shutdown();
        let _ = std::fs::remove_file(&self.txt);
        let _ = std::fs::remove_file(&self.bin);
    }
}

/// Runs the full matrix for one generated workload.
fn run_matrix(tag: &str, graph: CsrGraph) {
    // Two threads keeps the parallel engines honest without oversubscribing
    // the CI matrix; sync semantics makes the result deterministic anyway.
    let (engine, threads) = ("rayon", 2);
    let fixture = Fixture::start(tag, &graph);
    let mut client = ServeClient::connect(fixture.handle.addr()).expect("connecting");

    // Resident form: LOAD both representations; one graph, one key.
    let load = |client: &mut ServeClient, path: &std::path::Path| {
        let response = client
            .request(&format!("LOAD path={}", path.display()))
            .unwrap();
        assert!(response.ok(), "{}", response.raw);
        response.str_field("graph").unwrap().to_string()
    };
    let hash_txt = load(&mut client, &fixture.txt);
    let hash_bin = load(&mut client, &fixture.bin);
    assert_eq!(
        hash_txt, hash_bin,
        "text and binary representations of one graph must share a key"
    );

    for case in cases(engine, threads) {
        for (repr, path) in [("text", &fixture.txt), ("binary", &fixture.bin)] {
            let expected = cli_path_bytes(path, case.config.clone());
            // Addressing by path.
            let by_path = client
                .request(&format!(
                    "EXTRACT path={} {} payload=edges",
                    path.display(),
                    case.request_args
                ))
                .unwrap();
            assert!(by_path.ok(), "{tag}/{}/{repr}: {}", case.label, by_path.raw);
            assert_eq!(
                by_path.payload, expected,
                "{tag}/{}/{repr}: serve bytes differ from the CLI output (by path)",
                case.label
            );
            // Addressing the resident graph by content hash.
            let by_hash = client
                .request(&format!(
                    "EXTRACT graph={hash_bin} {} payload=edges",
                    case.request_args
                ))
                .unwrap();
            assert!(by_hash.ok(), "{tag}/{}/{repr}: {}", case.label, by_hash.raw);
            assert_eq!(
                by_hash.payload, expected,
                "{tag}/{}/{repr}: serve bytes differ from the CLI output (by hash)",
                case.label
            );
            // The frame's summary fields must agree with the payload.
            let sub_edges = by_path.u64_field("chordal_edges").unwrap();
            assert!(sub_edges > 0, "{tag}/{}: empty extraction", case.label);
        }
        // The algorithm echo uses the registry's repaired naming.
        let echo = client
            .request(&format!("EXTRACT graph={hash_bin} {}", case.request_args))
            .unwrap();
        let expected_name = if case.label == "alg1+repair" {
            "alg1+repair".to_string()
        } else {
            case.label.to_string()
        };
        assert_eq!(
            echo.str_field("algorithm"),
            Some(expected_name.as_str()),
            "{}",
            echo.raw
        );
    }
}

#[test]
fn serve_matches_cli_output_on_an_rmat_graph() {
    run_matrix("rmat_g8", RmatParams::preset(RmatKind::G, 8, 31).generate());
}

#[test]
fn serve_matches_cli_output_on_a_gene_network() {
    run_matrix("bio_unt", GeneNetworkKind::Gse5140Unt.network(180, 5));
}

#[test]
fn serve_matches_cli_output_on_a_structured_graph() {
    run_matrix(
        "grid11x6",
        maximal_chordal::generators::structured::grid(11, 6),
    );
}
