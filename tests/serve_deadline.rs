//! Deadline-aware admission queueing, end to end: bursts beyond
//! `max_inflight` are absorbed by the bounded FIFO queue without a single
//! `overload` reply, queued requests expire exactly at their `deadline_ms`
//! without executing, queue order is FIFO, shutdown drains every queued
//! request, and the client-side retry policy rides the server's
//! `retry_after_ms` hint. Saturation is always a deterministic state built
//! with the `HOLD` test hook (one permit, held for a scripted duration),
//! never a timing race; queue occupancy is confirmed through `STATS`
//! before any assertion that depends on it.

use maximal_chordal::graph::io::write_edge_list_file;
use maximal_chordal::graph::storage::convert_edge_list_to_binary;
use maximal_chordal::prelude::*;
use maximal_chordal::serve::{JsonValue, RetryPolicy, ServeClient, ServeConfig, Server};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// One seeded binary graph on disk, removed on drop.
struct Workload {
    files: Vec<PathBuf>,
    bin: PathBuf,
}

impl Workload {
    fn binary(tag: &str) -> Workload {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let txt = dir.join(format!("chordal_serve_deadline_{pid}_{tag}.txt"));
        let bin = dir.join(format!("chordal_serve_deadline_{pid}_{tag}.bin"));
        let graph = RmatParams::preset(RmatKind::G, 7, 91).generate();
        write_edge_list_file(&graph, &txt).expect("writing text edge list");
        convert_edge_list_to_binary(&txt, &bin).expect("streaming conversion");
        Workload {
            files: vec![txt, bin.clone()],
            bin,
        }
    }
}

impl Drop for Workload {
    fn drop(&mut self) {
        for f in &self.files {
            let _ = std::fs::remove_file(f);
        }
    }
}

fn stat(client: &mut ServeClient, path: &[&str]) -> u64 {
    let response = client.request("STATS").unwrap();
    assert!(response.ok(), "{}", response.raw);
    response
        .json
        .path(path)
        .and_then(JsonValue::as_u64)
        .unwrap_or_else(|| panic!("missing {path:?} in {}", response.raw))
}

/// Polls a STATS field until it reaches `want` (or a generous deadline
/// trips), so saturation/queue state is confirmed, not assumed.
fn wait_for(client: &mut ServeClient, path: &[&str], want: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while stat(client, path) != want {
        assert!(Instant::now() < deadline, "{path:?} never reached {want}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn a_burst_beyond_max_inflight_is_absorbed_without_one_overload() {
    let workload = Workload::binary("burst");
    let mut handle = Server::start(ServeConfig {
        max_inflight: 1,
        max_queue: 16,
        test_hooks: true,
        ..ServeConfig::default()
    })
    .expect("starting server");
    let addr = handle.addr();
    let mut observer = ServeClient::connect(addr).unwrap();
    let overloaded_before = stat(&mut observer, &["server", "overloaded_total"]);
    let waits_before = stat(&mut observer, &["server", "queue_waits"]);

    // Saturate the single permit, then burst five extractions at it.
    let mut holder = ServeClient::connect(addr).unwrap();
    holder.send_line("HOLD ms=2000").unwrap();
    wait_for(&mut observer, &["server", "inflight"], 1);
    const BURST: usize = 5;
    std::thread::scope(|scope| {
        let workload = &workload;
        for _ in 0..BURST {
            scope.spawn(move || {
                let mut client = ServeClient::connect(addr).unwrap();
                let response = client
                    .request(&format!(
                        "EXTRACT path={} algorithm=alg1",
                        workload.bin.display()
                    ))
                    .unwrap();
                // The acceptance lock: queueing means every burst request
                // succeeds; none may be bounced.
                assert!(response.ok(), "burst request bounced: {}", response.raw);
                assert!(
                    response.u64_field("queue_wait_ns").unwrap() > 0,
                    "burst requests must have queued: {}",
                    response.raw
                );
            });
        }
        // All five must actually park behind the held permit.
        wait_for(&mut observer, &["server", "queue_depth"], BURST as u64);
    });
    assert_eq!(
        stat(&mut observer, &["server", "overloaded_total"]),
        overloaded_before,
        "a bounded queue absorbs the burst without a single overload reply"
    );
    assert_eq!(
        stat(&mut observer, &["server", "queue_waits"]) - waits_before,
        BURST as u64
    );
    assert!(stat(&mut observer, &["server", "max_queue_wait_ns"]) > 0);
    assert!(holder.read_response().unwrap().ok());
    handle.shutdown();
}

#[test]
fn an_expired_deadline_answers_without_executing() {
    let workload = Workload::binary("expire");
    let mut handle = Server::start(ServeConfig {
        max_inflight: 1,
        max_queue: 16,
        test_hooks: true,
        ..ServeConfig::default()
    })
    .expect("starting server");
    let addr = handle.addr();
    let mut observer = ServeClient::connect(addr).unwrap();
    let mut holder = ServeClient::connect(addr).unwrap();
    holder.send_line("HOLD ms=2500").unwrap();
    wait_for(&mut observer, &["server", "inflight"], 1);
    let extractions_before = stat(&mut observer, &["server", "extractions_total"]);

    let mut client = ServeClient::connect(addr).unwrap();
    let sent = Instant::now();
    let expired = client
        .request(&format!(
            "EXTRACT path={} algorithm=alg1 deadline_ms=100",
            workload.bin.display()
        ))
        .unwrap();
    let elapsed = sent.elapsed();
    assert_eq!(expired.code(), Some("deadline-exceeded"), "{}", expired.raw);
    // The reply carries the queue wait, which covers at least the
    // deadline itself...
    let queue_wait_ns = expired.u64_field("queue_wait_ns").unwrap();
    assert!(queue_wait_ns >= 100_000_000, "waited {queue_wait_ns}ns");
    // ...and arrives promptly at expiry — far before the holder would
    // have freed the permit.
    assert!(
        elapsed < Duration::from_millis(1500),
        "expiry took {elapsed:?}, the deadline was 100ms"
    );
    // The expired request never executed.
    assert_eq!(
        stat(&mut observer, &["server", "extractions_total"]),
        extractions_before
    );
    assert_eq!(stat(&mut observer, &["server", "deadline_expired"]), 1);
    assert_eq!(stat(&mut observer, &["server", "queue_depth"]), 0);

    // Recovery: once the holder frees the permit, the same request (same
    // connection) succeeds.
    assert!(holder.read_response().unwrap().ok());
    let retried = client
        .request(&format!(
            "EXTRACT path={} algorithm=alg1 deadline_ms=1000",
            workload.bin.display()
        ))
        .unwrap();
    assert!(retried.ok(), "{}", retried.raw);
    handle.shutdown();
}

#[test]
fn queued_requests_are_granted_in_fifo_order() {
    let mut handle = Server::start(ServeConfig {
        max_inflight: 1,
        max_queue: 8,
        test_hooks: true,
        ..ServeConfig::default()
    })
    .expect("starting server");
    let addr = handle.addr();
    let mut observer = ServeClient::connect(addr).unwrap();
    let mut holder = ServeClient::connect(addr).unwrap();
    holder.send_line("HOLD ms=1000").unwrap();
    wait_for(&mut observer, &["server", "inflight"], 1);

    // Enqueue three HOLDs strictly one after another — each is confirmed
    // parked (queue_depth grew) before the next is sent, so the arrival
    // order is not a race.
    const WAITERS: usize = 3;
    let mut clients = Vec::new();
    for i in 0..WAITERS {
        let mut client = ServeClient::connect(addr).unwrap();
        client.send_line("HOLD ms=50").unwrap();
        wait_for(&mut observer, &["server", "queue_depth"], i as u64 + 1);
        clients.push(client);
    }
    assert!(holder.read_response().unwrap().ok());
    // FIFO: waiter i completes strictly before waiter i+1 (each holds the
    // single permit for 50ms, so completion instants are well separated).
    let mut completions = Vec::new();
    for (i, client) in clients.iter_mut().enumerate() {
        let response = client.read_response().unwrap();
        assert!(response.ok(), "waiter {i}: {}", response.raw);
        completions.push(Instant::now());
        assert!(
            response.u64_field("queue_wait_ns").unwrap() > 0,
            "waiter {i} must have queued"
        );
    }
    // Responses were read in enqueue order above; reading client i+1
    // *after* client i can only observe FIFO violations as an inversion
    // of arrival instants, which serialized 50ms holds make visible.
    for pair in completions.windows(2) {
        assert!(pair[0] <= pair[1]);
    }
    handle.shutdown();
}

#[test]
fn shutdown_drains_every_queued_request() {
    let workload = Workload::binary("drain");
    let mut handle = Server::start(ServeConfig {
        max_inflight: 1,
        max_queue: 8,
        test_hooks: true,
        ..ServeConfig::default()
    })
    .expect("starting server");
    let addr = handle.addr();
    let mut observer = ServeClient::connect(addr).unwrap();
    let mut holder = ServeClient::connect(addr).unwrap();
    holder.send_line("HOLD ms=400").unwrap();
    wait_for(&mut observer, &["server", "inflight"], 1);

    const QUEUED: usize = 3;
    let mut clients = Vec::new();
    for i in 0..QUEUED {
        let mut client = ServeClient::connect(addr).unwrap();
        client
            .send_line(&format!(
                "EXTRACT path={} algorithm=alg1",
                workload.bin.display()
            ))
            .unwrap();
        wait_for(&mut observer, &["server", "queue_depth"], i as u64 + 1);
        clients.push(client);
    }
    // Shutdown with work queued: the drain phase must let the held permit
    // expire and all three queued extractions run to completion.
    handle.shutdown();
    assert!(holder.read_response().unwrap().ok());
    for (i, client) in clients.iter_mut().enumerate() {
        let response = client.read_response().unwrap();
        assert!(
            response.ok(),
            "queued request {i} must be served through the drain: {}",
            response.raw
        );
    }
}

#[test]
fn a_forced_drain_deadline_still_answers_every_queued_request() {
    let mut handle = Server::start(ServeConfig {
        max_inflight: 1,
        max_queue: 8,
        // Far shorter than the 1500ms hold: the drain cannot finish, so
        // halt must answer the stragglers.
        drain_timeout_ms: 100,
        test_hooks: true,
        ..ServeConfig::default()
    })
    .expect("starting server");
    let addr = handle.addr();
    let mut observer = ServeClient::connect(addr).unwrap();
    let mut holder = ServeClient::connect(addr).unwrap();
    holder.send_line("HOLD ms=1500").unwrap();
    wait_for(&mut observer, &["server", "inflight"], 1);

    let mut clients = Vec::new();
    for i in 0..2usize {
        let mut client = ServeClient::connect(addr).unwrap();
        client.send_line("HOLD ms=0").unwrap();
        wait_for(&mut observer, &["server", "queue_depth"], i as u64 + 1);
        clients.push(client);
    }
    handle.shutdown();
    // In-flight work still completes (shutdown joins its thread)...
    assert!(holder.read_response().unwrap().ok());
    // ...and the waiters the drain could not serve are *answered*, not
    // abandoned: an overload frame telling them the server is going away.
    for (i, client) in clients.iter_mut().enumerate() {
        let response = client.read_response().unwrap();
        assert_eq!(
            response.code(),
            Some("overload"),
            "straggler {i}: {}",
            response.raw
        );
        assert!(
            response.raw.contains("shutting down"),
            "straggler {i}: {}",
            response.raw
        );
    }
}

#[test]
fn a_full_queue_answers_overload_with_a_retry_hint() {
    let mut handle = Server::start(ServeConfig {
        max_inflight: 1,
        max_queue: 1,
        test_hooks: true,
        ..ServeConfig::default()
    })
    .expect("starting server");
    let addr = handle.addr();
    let mut observer = ServeClient::connect(addr).unwrap();
    let mut holder = ServeClient::connect(addr).unwrap();
    holder.send_line("HOLD ms=800").unwrap();
    wait_for(&mut observer, &["server", "inflight"], 1);
    let mut queued = ServeClient::connect(addr).unwrap();
    queued.send_line("HOLD ms=0").unwrap();
    wait_for(&mut observer, &["server", "queue_depth"], 1);

    // Permit held, queue full: the third request is the one bounced.
    let mut bounced = ServeClient::connect(addr).unwrap();
    let response = bounced.request("HOLD ms=0").unwrap();
    assert_eq!(response.code(), Some("overload"), "{}", response.raw);
    assert!(
        response.u64_field("retry_after_ms").unwrap() >= 5,
        "overload must carry a back-off hint: {}",
        response.raw
    );
    assert_eq!(response.u64_field("queue_depth"), Some(1));
    assert!(holder.read_response().unwrap().ok());
    assert!(queued.read_response().unwrap().ok());
    handle.shutdown();
}

#[test]
fn client_retry_rides_the_hint_until_the_server_frees_up() {
    let mut handle = Server::start(ServeConfig {
        max_inflight: 1,
        // Bounce-only admission: every saturated attempt is an overload
        // the retry policy must absorb.
        max_queue: 0,
        test_hooks: true,
        ..ServeConfig::default()
    })
    .expect("starting server");
    let addr = handle.addr();
    let mut observer = ServeClient::connect(addr).unwrap();
    let mut holder = ServeClient::connect(addr).unwrap();
    holder.send_line("HOLD ms=300").unwrap();
    wait_for(&mut observer, &["server", "inflight"], 1);

    // The ~5ms hints sum far past the 300ms hold well within the attempt
    // budget, so success is guaranteed, not probabilistic.
    let policy = RetryPolicy {
        max_attempts: 200,
        ..RetryPolicy::default()
    };
    let mut client = ServeClient::connect(addr).unwrap();
    let (response, attempts) = client.request_with_retry("HOLD ms=0", &policy).unwrap();
    assert!(response.ok(), "{}", response.raw);
    assert!(
        attempts > 1,
        "the saturated server must have forced at least one retry"
    );
    assert!(holder.read_response().unwrap().ok());
    handle.shutdown();
}
