//! Protocol torture suite for `chordal serve`: malformed frames, truncated
//! and partial reads, oversized payloads, pipelined requests, and abrupt
//! disconnects must all produce typed error frames or a clean close —
//! never a panic, a wedged connection, or a leaked session slot.

use maximal_chordal::graph::io::write_edge_list_file;
use maximal_chordal::graph::storage::convert_edge_list_to_binary;
use maximal_chordal::prelude::*;
use maximal_chordal::serve::{JsonValue, ServeClient, ServeConfig, Server, ServerHandle};
use std::time::{Duration, Instant};

/// A server plus the scratch graph files its tests extract from; both are
/// torn down on drop.
struct Fixture {
    handle: ServerHandle,
    txt: std::path::PathBuf,
    bin: std::path::PathBuf,
}

impl Fixture {
    fn start(tag: &str, config: ServeConfig) -> Fixture {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let txt = dir.join(format!("chordal_serve_proto_{pid}_{tag}.txt"));
        let bin = dir.join(format!("chordal_serve_proto_{pid}_{tag}.bin"));
        let graph = RmatParams::preset(RmatKind::G, 7, 23).generate();
        write_edge_list_file(&graph, &txt).expect("writing text edge list");
        convert_edge_list_to_binary(&txt, &bin).expect("streaming conversion");
        let handle = Server::start(config).expect("starting server");
        Fixture { handle, txt, bin }
    }

    fn client(&self) -> ServeClient {
        ServeClient::connect(self.handle.addr()).expect("connecting")
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        self.handle.shutdown();
        let _ = std::fs::remove_file(&self.txt);
        let _ = std::fs::remove_file(&self.bin);
    }
}

fn default_fixture(tag: &str) -> Fixture {
    Fixture::start(tag, ServeConfig::default())
}

#[test]
fn ping_answers_and_unknown_verbs_keep_the_connection_alive() {
    let fixture = default_fixture("ping");
    let mut client = fixture.client();
    let pong = client.request("PING").unwrap();
    assert!(pong.ok(), "{}", pong.raw);
    assert_eq!(pong.str_field("verb"), Some("PING"));
    let bad = client.request("FROBNICATE now=1").unwrap();
    assert_eq!(bad.code(), Some("bad-verb"), "{}", bad.raw);
    // The connection survives an unknown verb.
    assert!(client.request("PING").unwrap().ok());
}

#[test]
fn malformed_arguments_get_typed_errors_and_the_connection_survives() {
    let fixture = default_fixture("args");
    let mut client = fixture.client();
    let cases: &[(&str, &str)] = &[
        // A bare word is not key=value.
        ("EXTRACT justaword", "bad-arg"),
        // LOAD without its one required argument.
        ("LOAD", "missing-arg"),
        // EXTRACT names neither a resident graph nor a path.
        ("EXTRACT algorithm=alg1", "missing-arg"),
        // Unparsable values.
        ("EXTRACT path=/tmp/x format=bogus", "bad-arg"),
        ("EXTRACT path=/tmp/x algorithm=quantum", "bad-arg"),
        ("EXTRACT path=/tmp/x threads=many", "bad-arg"),
        ("EXTRACT path=/tmp/x repair=maybe", "bad-arg"),
        ("EXTRACT graph=nothex algorithm=alg1", "bad-arg"),
        // A well-formed path that does not exist.
        ("LOAD path=/nonexistent/graph.bin", "io"),
        // A hash nothing was loaded under.
        ("EXTRACT graph=00000000deadbeef", "not-found"),
        // HOLD is a test hook; this server has hooks disabled.
        ("HOLD ms=10", "bad-verb"),
    ];
    for (line, code) in cases {
        let response = client.request(line).unwrap();
        assert_eq!(response.code(), Some(*code), "{line} -> {}", response.raw);
        assert!(!response.ok());
    }
    // Eleven errors later the connection still serves.
    assert!(client.request("PING").unwrap().ok());
}

#[test]
fn non_utf8_lines_are_bad_frames_but_do_not_close() {
    let fixture = default_fixture("utf8");
    let mut client = fixture.client();
    client.send_raw(b"\xff\xfe\x80PING\n").unwrap();
    let response = client.read_response().unwrap();
    assert_eq!(response.code(), Some("bad-frame"), "{}", response.raw);
    assert!(client.request("PING").unwrap().ok());
}

#[test]
fn oversized_frames_are_rejected_and_the_connection_closes() {
    let fixture = default_fixture("oversize");
    let mut client = fixture.client();
    // More than MAX_REQUEST_BYTES without a newline: the stream cannot be
    // resynchronised, so the server must answer bad-frame and close.
    let huge = vec![b'a'; 9 * 1024];
    client.send_raw(&huge).unwrap();
    let response = client.read_response().unwrap();
    assert_eq!(response.code(), Some("bad-frame"), "{}", response.raw);
    // The close is observable as EOF (or a reset, depending on timing).
    assert!(client.read_response().is_err());
}

#[test]
fn partial_frames_reassemble_across_reads() {
    let fixture = default_fixture("partial");
    let mut client = fixture.client();
    // Split one request across three writes with pauses longer than the
    // server's read-poll interval, so each fragment arrives in its own
    // read call.
    client.send_raw(b"PI").unwrap();
    std::thread::sleep(Duration::from_millis(120));
    client.send_raw(b"N").unwrap();
    std::thread::sleep(Duration::from_millis(120));
    client.send_raw(b"G\n").unwrap();
    let response = client.read_response().unwrap();
    assert!(response.ok(), "{}", response.raw);
    assert_eq!(response.str_field("verb"), Some("PING"));
}

#[test]
fn blank_lines_and_crlf_terminators_are_tolerated() {
    let fixture = default_fixture("blank");
    let mut client = fixture.client();
    client.send_raw(b"\n\r\n  \nPING\r\n").unwrap();
    let response = client.read_response().unwrap();
    assert!(response.ok(), "{}", response.raw);
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    let fixture = default_fixture("pipeline");
    let mut client = fixture.client();
    // Three requests in a single write; the payload-carrying EXTRACT sits
    // in the middle so ordering mistakes would corrupt the next frame.
    let script = format!(
        "PING\nEXTRACT path={} algorithm=alg1 semantics=sync payload=edges\nSTATS\n",
        fixture.bin.display()
    );
    client.send_raw(script.as_bytes()).unwrap();
    let first = client.read_response().unwrap();
    assert_eq!(first.str_field("verb"), Some("PING"), "{}", first.raw);
    let second = client.read_response().unwrap();
    assert_eq!(second.str_field("verb"), Some("EXTRACT"), "{}", second.raw);
    assert!(second.u64_field("payload_bytes").unwrap() > 0);
    assert_eq!(
        second.payload.len(),
        second.u64_field("payload_bytes").unwrap() as usize
    );
    let third = client.read_response().unwrap();
    assert_eq!(third.str_field("verb"), Some("STATS"), "{}", third.raw);
}

#[test]
fn abrupt_disconnect_mid_extraction_releases_the_session() {
    let fixture = default_fixture("disconnect");
    let mut observer = fixture.client();
    for _ in 0..3 {
        let mut client = fixture.client();
        client
            .send_line(&format!(
                "EXTRACT path={} algorithm=alg1 payload=edges",
                fixture.bin.display()
            ))
            .unwrap();
        // Drop the connection without reading the response: the server's
        // write fails and the session must unwind cleanly.
        drop(client);
    }
    // The leaked-slot check: sessions_active must come back down to just
    // the observer within the poll deadline.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = observer.request("STATS").unwrap();
        assert!(stats.ok(), "{}", stats.raw);
        let active = stats
            .json
            .path(&["server", "sessions_active"])
            .and_then(JsonValue::as_u64)
            .unwrap();
        if active == 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "sessions_active stuck at {active}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn stats_exposes_the_admission_control_observables() {
    let fixture = default_fixture("stats");
    let mut client = fixture.client();
    let stats = client.request("STATS").unwrap();
    assert!(stats.ok(), "{}", stats.raw);
    let field = |path: &[&str]| {
        stats
            .json
            .path(path)
            .and_then(JsonValue::as_u64)
            .unwrap_or_else(|| panic!("missing {path:?} in {}", stats.raw))
    };
    // The two counters the admission-control tests assert on.
    let idle = field(&["pool", "idle_workers"]);
    let size = field(&["pool", "size"]);
    assert!(idle <= size, "{idle} idle of {size}");
    let _ = field(&["pool", "tickets_dropped"]);
    // Full layout sanity.
    assert_eq!(field(&["server", "sessions_active"]), 1);
    assert!(field(&["server", "max_inflight"]) >= 1);
    // The queueing observables ride in the server object.
    assert_eq!(field(&["server", "queue_depth"]), 0);
    let _ = field(&["server", "queue_waits"]);
    let _ = field(&["server", "deadline_expired"]);
    let _ = field(&["server", "max_queue_wait_ns"]);
    assert!(field(&["server", "max_queue"]) >= 1);
    let _ = field(&["cache", "resident_bytes"]);
    let _ = field(&["cache", "corruptions"]);
    assert!(field(&["cache", "budget_bytes"]) > 0);
}

#[test]
fn a_corrupt_binary_file_is_quarantined_with_a_typed_error() {
    let fixture = default_fixture("corrupt");
    let mut client = fixture.client();
    // Damage the file on disk *after* conversion: flip one byte in the
    // data sections so the header checksum no longer matches.
    let mut bytes = std::fs::read(&fixture.bin).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    std::fs::write(&fixture.bin, &bytes).unwrap();

    // Admission verifies the section checksum: the damaged file is
    // rejected with `corrupt` — not `io` (it decodes) and not `not-found`
    // (it exists) — and counted.
    let response = client
        .request(&format!("LOAD path={}", fixture.bin.display()))
        .unwrap();
    assert_eq!(response.code(), Some("corrupt"), "{}", response.raw);
    assert!(response.raw.contains("checksum"), "{}", response.raw);
    let stats = client.request("STATS").unwrap();
    assert_eq!(
        stats
            .json
            .path(&["cache", "corruptions"])
            .and_then(JsonValue::as_u64),
        Some(1),
        "{}",
        stats.raw
    );
    // The corrupt graph was never admitted, and the failure is
    // deterministic on retry — not cached as success, not flaky.
    let again = client
        .request(&format!(
            "EXTRACT path={} algorithm=alg1",
            fixture.bin.display()
        ))
        .unwrap();
    assert_eq!(again.code(), Some("corrupt"), "{}", again.raw);

    // Repairing the file re-admits it under its content hash.
    bytes[last] ^= 0xff;
    std::fs::write(&fixture.bin, &bytes).unwrap();
    let healed = client
        .request(&format!("LOAD path={}", fixture.bin.display()))
        .unwrap();
    assert!(healed.ok(), "{}", healed.raw);
}

#[test]
fn shutdown_verb_stops_the_server() {
    let fixture = default_fixture("shutdown");
    let mut client = fixture.client();
    let response = client.request("SHUTDOWN").unwrap();
    assert!(response.ok(), "{}", response.raw);
    let deadline = Instant::now() + Duration::from_secs(5);
    while !fixture.handle.is_shut_down() {
        assert!(Instant::now() < deadline, "server did not stop");
        std::thread::sleep(Duration::from_millis(20));
    }
}
