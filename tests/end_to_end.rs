//! End-to-end integration tests spanning every crate of the workspace:
//! generate → extract (every engine/variant) → verify → stitch → analyse.

use maximal_chordal::graph::subgraph::edge_subgraph;
use maximal_chordal::graph::traversal::connected_components;
use maximal_chordal::prelude::*;

fn engines() -> Vec<Engine> {
    vec![
        Engine::serial(),
        Engine::chunked(4),
        Engine::chunked_with_grain(3, 16),
        Engine::rayon(2),
        Engine::rayon(4),
    ]
}

fn workloads() -> Vec<(String, CsrGraph)> {
    let mut graphs = vec![];
    for kind in [RmatKind::Er, RmatKind::G, RmatKind::B] {
        let g = RmatParams::preset(kind, 9, 11).generate();
        graphs.push((format!("{}(9)", kind.name()), g));
    }
    graphs.push((
        "GSE5140(UNT)-mini".to_string(),
        GeneNetworkKind::Gse5140Unt.network(300, 5),
    ));
    graphs
}

#[test]
fn extraction_is_chordal_for_every_engine_variant_and_workload() {
    for (name, graph) in workloads() {
        for engine in engines() {
            for adjacency in [AdjacencyMode::Sorted, AdjacencyMode::Unsorted] {
                for semantics in [Semantics::Synchronous, Semantics::Asynchronous] {
                    let config = ExtractorConfig::default()
                        .with_engine(engine.clone())
                        .with_adjacency(adjacency)
                        .with_semantics(semantics)
                        .with_stats(true);
                    let result = ExtractionSession::new(config).extract(&graph);
                    let sub = result.subgraph(&graph);
                    assert!(
                        is_chordal(&sub),
                        "{name}: {engine:?} {adjacency:?} {semantics:?} produced a non-chordal subgraph"
                    );
                    // Every retained edge exists in the host graph.
                    for &(u, v) in result.edges() {
                        assert!(graph.has_edge(u, v), "{name}: foreign edge ({u},{v})");
                    }
                    // Stats agree with the result.
                    let stats = result.stats.as_ref().unwrap();
                    assert_eq!(stats.iterations(), result.iterations);
                    assert_eq!(stats.total_edges(), result.num_chordal_edges());
                }
            }
        }
    }
}

#[test]
fn synchronous_results_are_identical_across_engines_and_thread_counts() {
    for (name, graph) in workloads() {
        let reference = maximal_chordal::core::reference::extract_reference(&graph);
        for engine in engines() {
            let config = ExtractorConfig::default()
                .with_engine(engine.clone())
                .with_semantics(Semantics::Synchronous);
            let result = ExtractionSession::new(config).extract(&graph);
            assert_eq!(
                result.edges(),
                reference.edges(),
                "{name}: {engine:?} deviates from the sequential reference"
            );
        }
    }
}

#[test]
fn asynchronous_serial_runs_are_deterministic() {
    for (name, graph) in workloads() {
        // Two runs through one session (reused workspace) and one through a
        // fresh session must all agree.
        let mut session = ExtractionSession::new(ExtractorConfig::serial(AdjacencyMode::Sorted));
        let a = session.extract(&graph);
        let b = session.extract(&graph);
        let fresh =
            ExtractionSession::new(ExtractorConfig::serial(AdjacencyMode::Sorted)).extract(&graph);
        assert_eq!(a.edges(), b.edges(), "{name}");
        assert_eq!(a.edges(), fresh.edges(), "{name}");
        assert_eq!(a.iterations, b.iterations, "{name}");
    }
}

#[test]
fn stitched_extraction_is_connected_when_the_host_graph_is() {
    for (name, graph) in workloads() {
        let host_components = connected_components(&graph).count;
        let result = extract_maximal_chordal(&graph);
        let stitched = stitched_edge_set(&graph, result.edges());
        let stitched_graph = edge_subgraph(&graph, &stitched);
        assert!(is_chordal(&stitched_graph), "{name}");
        assert_eq!(
            connected_components(&stitched_graph).count,
            host_components,
            "{name}: stitching should reach the host graph's component count"
        );
    }
}

#[test]
fn dearing_baseline_is_chordal_and_maximal_on_the_workloads() {
    for (name, graph) in workloads() {
        let result = extract_dearing(&graph);
        assert!(is_chordal(&result.subgraph(&graph)), "{name}");
        let report = check_maximality(&graph, result.edges(), Some(100), 3);
        assert!(
            report.is_maximal(),
            "{name}: Dearing output must be maximal"
        );
    }
}

#[test]
fn chordal_inputs_pass_through_dearing_untouched_and_alg1_keeps_them_chordal() {
    use maximal_chordal::generators::chordal_gen::{interval_graph, k_tree};
    for graph in [k_tree(60, 3, 5), interval_graph(80, 0.08, 9)] {
        assert!(is_chordal(&graph));
        let dearing = extract_dearing(&graph);
        assert_eq!(dearing.num_chordal_edges(), graph.num_edges());
        let alg1 = extract_maximal_chordal(&graph);
        assert!(is_chordal(&alg1.subgraph(&graph)));
        assert!(alg1.num_chordal_edges() <= graph.num_edges());
    }
}

#[test]
fn partitioned_baseline_reports_its_violations_honestly() {
    use maximal_chordal::core::partitioned::{extract_partitioned, PartitionStrategy};
    let graph = RmatParams::preset(RmatKind::G, 9, 2).generate();
    for parts in [1usize, 2, 8] {
        let result = extract_partitioned(&graph, parts, PartitionStrategy::Blocks);
        let subgraph = edge_subgraph(&graph, &result.edges);
        assert_eq!(result.chordal, is_chordal(&subgraph));
        if parts == 1 {
            assert!(result.chordal, "single partition is plain Dearing");
        }
    }
}

#[test]
fn cli_style_roundtrip_through_text_files() {
    use maximal_chordal::graph::io::{read_edge_list_file, write_edge_list_file};
    let dir = std::env::temp_dir().join("maximal_chordal_it");
    std::fs::create_dir_all(&dir).unwrap();
    let graph_path = dir.join("graph.txt");
    let sub_path = dir.join("chordal.txt");

    let graph = RmatParams::preset(RmatKind::Er, 9, 4).generate();
    write_edge_list_file(&graph, &graph_path).unwrap();
    let loaded = read_edge_list_file(&graph_path).unwrap();
    assert_eq!(graph, loaded);

    let result = extract_maximal_chordal(&loaded);
    let sub = result.subgraph(&loaded);
    write_edge_list_file(&sub, &sub_path).unwrap();
    let sub_loaded = read_edge_list_file(&sub_path).unwrap();
    assert!(is_chordal(&sub_loaded));
    assert_eq!(sub_loaded.num_edges(), result.num_chordal_edges());
    let _ = std::fs::remove_dir_all(&dir);
}
