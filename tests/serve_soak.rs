//! Concurrency soak for `chordal serve`: many concurrent clients hammering
//! a shared server must observe correct results (zero cross-session
//! corruption), assertable cache behaviour (hit counts, LRU eviction under
//! a tight budget), and graceful overload when admission control
//! saturates. Everything is seeded and deterministic: expected extraction
//! results are precomputed in-process, saturation is forced with the
//! `HOLD` test hook rather than timing races, and the request schedule is
//! a fixed affine mix.

use maximal_chordal::graph::io::write_edge_list_file;
use maximal_chordal::graph::storage::convert_edge_list_to_binary;
use maximal_chordal::prelude::*;
use maximal_chordal::serve::{JsonValue, ServeClient, ServeConfig, Server};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Generated workload files, removed on drop.
struct Workload {
    files: Vec<PathBuf>,
}

impl Workload {
    /// Writes `n` distinct binary R-MAT graphs (scale 7, seeded).
    fn binary(tag: &str, n: usize) -> Workload {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let mut files = Vec::new();
        let mut scratch = Vec::new();
        for seed in 0..n as u64 {
            let txt = dir.join(format!("chordal_serve_soak_{pid}_{tag}_{seed}.txt"));
            let bin = dir.join(format!("chordal_serve_soak_{pid}_{tag}_{seed}.bin"));
            let graph = RmatParams::preset(RmatKind::G, 7, 40 + seed).generate();
            write_edge_list_file(&graph, &txt).expect("writing text edge list");
            convert_edge_list_to_binary(&txt, &bin).expect("streaming conversion");
            scratch.push(txt);
            files.push(bin);
        }
        // Text files ride along only for cleanup; callers index the
        // binaries as 0..n.
        files.extend(scratch);
        Workload { files }
    }

    fn bin(&self, i: usize) -> &PathBuf {
        &self.files[i]
    }
}

impl Drop for Workload {
    fn drop(&mut self) {
        for f in &self.files {
            let _ = std::fs::remove_file(f);
        }
    }
}

fn stat(client: &mut ServeClient, path: &[&str]) -> u64 {
    let response = client.request("STATS").unwrap();
    assert!(response.ok(), "{}", response.raw);
    response
        .json
        .path(path)
        .and_then(JsonValue::as_u64)
        .unwrap_or_else(|| panic!("missing {path:?} in {}", response.raw))
}

#[test]
fn concurrent_clients_see_correct_results_and_cache_hits() {
    // Binaries 0 and 1 of the workload, two algorithms each: four request
    // shapes whose expected chordal edge counts are precomputed serially.
    let workload = Workload::binary("soak", 2);
    let algorithms = ["alg1", "dearing"];
    let mut expected = Vec::new();
    for graph_idx in 0..2 {
        let loaded =
            maximal_chordal::graph::storage::load_graph(workload.bin(graph_idx), None).unwrap();
        for algorithm in algorithms {
            let config = ExtractorConfig::serial(AdjacencyMode::Sorted)
                .with_algorithm(Algorithm::parse(algorithm).unwrap())
                .with_semantics(Semantics::Synchronous);
            let result = ExtractionSession::new(config).extract(loaded.as_graph_ref());
            expected.push(result.num_chordal_edges() as u64);
        }
    }

    let mut handle = Server::start(ServeConfig {
        max_sessions: 16,
        // Generous: this test measures correctness under concurrency, not
        // admission control (that is tested separately, deterministically).
        max_inflight: 64,
        ..ServeConfig::default()
    })
    .expect("starting server");
    let addr = handle.addr();

    const CLIENTS: usize = 6;
    const REQUESTS: usize = 15;
    let mut observer = ServeClient::connect(addr).unwrap();
    let hits_before = stat(&mut observer, &["cache", "hits"]);
    std::thread::scope(|scope| {
        let workload = &workload;
        let expected = &expected;
        for client_id in 0..CLIENTS {
            scope.spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connecting soak client");
                for i in 0..REQUESTS {
                    // Fixed affine schedule: every client cycles through
                    // all four request shapes with its own phase.
                    let shape = (3 * client_id + 2 * i) % 4;
                    let (graph_idx, algorithm) = (shape / 2, algorithms[shape % 2]);
                    let response = client
                        .request(&format!(
                            "EXTRACT path={} algorithm={algorithm} semantics=sync engine=serial",
                            workload.bin(graph_idx).display()
                        ))
                        .expect("soak request");
                    assert!(response.ok(), "client {client_id}: {}", response.raw);
                    // The corruption check: every response must carry the
                    // precomputed answer for *its own* request shape.
                    assert_eq!(
                        response.u64_field("chordal_edges"),
                        Some(expected[shape]),
                        "client {client_id} request {i} (shape {shape}): {}",
                        response.raw
                    );
                }
            });
        }
    });
    // 90 requests against 2 graphs: at most 2 loads were misses, all the
    // rest must have hit the cache.
    let hits_after = stat(&mut observer, &["cache", "hits"]);
    assert!(
        hits_after - hits_before >= (CLIENTS * REQUESTS - 2) as u64,
        "expected nearly all requests to hit the cache: {hits_before} -> {hits_after}"
    );
    assert!(stat(&mut observer, &["cache", "entries"]) <= 2);
    handle.shutdown();
}

#[test]
fn lru_eviction_under_a_tight_budget_is_observable_and_recoverable() {
    let workload = Workload::binary("lru", 3);
    let sizes: Vec<u64> = (0..3)
        .map(|i| std::fs::metadata(workload.bin(i)).unwrap().len())
        .collect();
    // Room for two of the three mapped graphs.
    let budget = (sizes[0] + sizes[1] + sizes[2] / 2) as usize;
    let mut handle = Server::start(ServeConfig {
        cache_budget_bytes: budget,
        ..ServeConfig::default()
    })
    .expect("starting server");
    let mut client = ServeClient::connect(handle.addr()).unwrap();

    let mut hashes = Vec::new();
    for i in 0..3 {
        let response = client
            .request(&format!("LOAD path={}", workload.bin(i).display()))
            .unwrap();
        assert!(response.ok(), "{}", response.raw);
        hashes.push(response.str_field("graph").unwrap().to_string());
    }
    assert!(
        stat(&mut client, &["cache", "evictions"]) >= 1,
        "three loads into a two-graph budget must evict"
    );
    assert!(stat(&mut client, &["cache", "resident_bytes"]) <= budget as u64);

    // The evicted (least recently used) entry was the first load: resident
    // addressing now misses with a typed error...
    let gone = client
        .request(&format!("EXTRACT graph={} algorithm=alg1", hashes[0]))
        .unwrap();
    assert_eq!(gone.code(), Some("not-found"), "{}", gone.raw);
    // ...while the most recent entry still serves...
    let kept = client
        .request(&format!("EXTRACT graph={} algorithm=alg1", hashes[2]))
        .unwrap();
    assert!(kept.ok(), "{}", kept.raw);
    // ...and the evicted graph is recoverable through its path (a fresh
    // load under the same content hash).
    let reloaded = client
        .request(&format!(
            "EXTRACT path={} algorithm=alg1",
            workload.bin(0).display()
        ))
        .unwrap();
    assert!(reloaded.ok(), "{}", reloaded.raw);
    assert_eq!(reloaded.str_field("graph"), Some(hashes[0].as_str()));
    handle.shutdown();
}

#[test]
fn saturated_admission_control_answers_overload_and_recovers() {
    let workload = Workload::binary("overload", 1);
    // One extraction permit and a zero-length queue (bounce-only
    // admission, the pre-queueing semantics), with the HOLD hook enabled
    // so saturation is a deterministic state, not a race. Queueing
    // behaviour has its own suite (`serve_deadline.rs`).
    let mut handle = Server::start(ServeConfig {
        max_inflight: 1,
        max_queue: 0,
        test_hooks: true,
        ..ServeConfig::default()
    })
    .expect("starting server");
    let addr = handle.addr();
    let mut holder = ServeClient::connect(addr).unwrap();
    let mut client = ServeClient::connect(addr).unwrap();

    // Occupy the only permit for two seconds.
    holder.send_line("HOLD ms=2000").unwrap();
    // Wait until the server has actually dequeued the HOLD (inflight == 1)
    // rather than sleeping and hoping.
    let deadline = Instant::now() + Duration::from_secs(5);
    while stat(&mut client, &["server", "inflight"]) < 1 {
        assert!(Instant::now() < deadline, "HOLD never started");
        std::thread::sleep(Duration::from_millis(10));
    }
    let overloaded_before = stat(&mut client, &["server", "overloaded_total"]);
    let rejected = client
        .request(&format!(
            "EXTRACT path={} algorithm=alg1",
            workload.bin(0).display()
        ))
        .unwrap();
    assert_eq!(rejected.code(), Some("overload"), "{}", rejected.raw);
    assert!(
        stat(&mut client, &["server", "overloaded_total"]) > overloaded_before,
        "overload must be counted"
    );
    // The holder finishes...
    let held = holder.read_response().unwrap();
    assert!(held.ok(), "{}", held.raw);
    // ...and the same request now succeeds: overload is backpressure, not
    // failure.
    let accepted = client
        .request(&format!(
            "EXTRACT path={} algorithm=alg1",
            workload.bin(0).display()
        ))
        .unwrap();
    assert!(accepted.ok(), "{}", accepted.raw);
    handle.shutdown();
}

#[test]
fn session_limit_rejects_extra_connections_then_admits_after_close() {
    let mut handle = Server::start(ServeConfig {
        max_sessions: 1,
        ..ServeConfig::default()
    })
    .expect("starting server");
    let addr = handle.addr();
    let mut first = ServeClient::connect(addr).unwrap();
    assert!(first.request("PING").unwrap().ok());

    // The second connection is answered with one overload frame and closed
    // without the client sending anything.
    let mut second = ServeClient::connect(addr).unwrap();
    let rejection = second.read_response().unwrap();
    assert_eq!(rejection.code(), Some("overload"), "{}", rejection.raw);
    assert!(
        second.read_response().is_err(),
        "rejected connections close"
    );

    // Freeing the slot readmits: the server notices the close within its
    // read-poll interval.
    drop(first);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut retry = ServeClient::connect(addr).unwrap();
        match retry.request("PING") {
            Ok(response) if response.ok() => break,
            _ => {
                assert!(Instant::now() < deadline, "slot never freed");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
    handle.shutdown();
}
