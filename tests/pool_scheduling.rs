//! Cross-algorithm lock-down suite for the persistent worker pool and the
//! hybrid batch scheduler.
//!
//! The substrate underneath every parallel engine changed from per-region
//! scoped threads to one persistent work-stealing pool, and
//! `extract_batch` gained a hybrid scheduling policy
//! (`batch_threshold_edges`). These tests pin the concurrency behaviour
//! down so it cannot regress silently:
//!
//! * property sweeps over seeded random and R-MAT graphs asserting every
//!   `Algorithm × Engine` output is chordal (where guaranteed) and
//!   edge-subset-valid;
//! * bit-for-bit agreement between pooled and serial engines for every
//!   deterministic configuration;
//! * hybrid-batch slot equivalence across thresholds and algorithms, and
//!   equivalence of the adaptive policy
//!   (`ExtractorConfig::batch_adaptive`) with every static pivot — batch
//!   placement must never change extraction output for deterministic
//!   configs;
//! * an end-to-end assertion that sustained extraction traffic reuses the
//!   pool's workers instead of spawning threads, with the pool's lock-free
//!   dispatch counters growing as regions are submitted.

use maximal_chordal::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seeded cases per property (kept moderate: the full matrix multiplies).
const CASES: u64 = 12;

/// One engine per scheduling style; thread counts deliberately exceed the
/// single-core CI floor so the pool paths are exercised everywhere.
fn engines() -> Vec<Engine> {
    vec![
        Engine::serial(),
        Engine::chunked_with_grain(4, 8),
        Engine::rayon(4),
    ]
}

fn random_graph(rng: &mut StdRng, max_n: usize, max_edges: usize) -> CsrGraph {
    let n = rng.gen_range(2..max_n);
    let cap = (n * (n - 1) / 2).min(max_edges);
    let m = rng.gen_range(0..cap.max(1) + 1);
    let mut builder = GraphBuilder::new(n);
    for _ in 0..m {
        let u = rng.gen_range(0..n) as u32;
        let v = rng.gen_range(0..n) as u32;
        if u != v {
            builder.add_edge(u, v);
        }
    }
    builder.build()
}

/// Graph suite for the matrix sweeps: seeded random graphs plus one R-MAT
/// preset per shape family.
fn workloads(seed: u64) -> Vec<CsrGraph> {
    let mut rng = StdRng::seed_from_u64(0x90_01 ^ seed);
    vec![
        random_graph(&mut rng, 36, 140),
        RmatParams::preset(RmatKind::Er, 7, seed).generate(),
        RmatParams::preset(RmatKind::B, 7, seed).generate(),
    ]
}

#[test]
fn every_algorithm_engine_pair_is_chordal_and_subset_valid() {
    for seed in 0..CASES {
        for graph in workloads(seed) {
            for algorithm in Algorithm::ALL {
                for engine in engines() {
                    let label = format!("seed {seed} {algorithm}/{}", engine.name());
                    let config = ExtractorConfig::default()
                        .with_algorithm(algorithm)
                        .with_engine(engine);
                    let result = ExtractionSession::new(config).extract(&graph);
                    for &(u, v) in result.edges() {
                        assert!(graph.has_edge(u, v), "{label}: foreign edge ({u},{v})");
                    }
                    if algorithm.guarantees_chordal() {
                        assert!(
                            is_chordal(&result.subgraph(&graph)),
                            "{label}: non-chordal output"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn pooled_engines_match_the_serial_engine_bit_for_bit() {
    // Synchronous semantics make every algorithm deterministic on every
    // engine, so the pooled schedules must reproduce the serial result
    // exactly — the strongest cross-engine agreement the registry offers.
    for seed in 0..CASES {
        for graph in workloads(seed) {
            for algorithm in Algorithm::ALL {
                let serial = ExtractorConfig::default()
                    .with_algorithm(algorithm)
                    .with_engine(Engine::serial())
                    .with_semantics(Semantics::Synchronous)
                    // Pin the partition count so the partitioned baseline
                    // does not re-derive it from each engine's threads.
                    .with_partitions(
                        3,
                        maximal_chordal::core::partitioned::PartitionStrategy::Blocks,
                    );
                let expected = ExtractionSession::new(serial.clone()).extract(&graph);
                for engine in engines() {
                    let config = serial.clone().with_engine(engine);
                    let got = ExtractionSession::new(config.clone()).extract(&graph);
                    assert!(
                        algorithm.is_deterministic(&config),
                        "sync semantics must classify as deterministic"
                    );
                    assert_eq!(
                        got.edges(),
                        expected.edges(),
                        "seed {seed} {algorithm}/{} diverged from serial",
                        config.engine.name()
                    );
                }
            }
        }
    }
}

#[test]
fn hybrid_batches_agree_with_single_runs_for_every_algorithm() {
    // Mixed batch with the threshold placed between the two graph sizes,
    // so both scheduling paths run in one call.
    let graphs: Vec<CsrGraph> = (0..3)
        .flat_map(|seed| {
            [
                RmatParams::preset(RmatKind::Er, 9, seed).generate(),
                RmatParams::preset(RmatKind::G, 6, seed).generate(),
            ]
        })
        .collect();
    let refs: Vec<&CsrGraph> = graphs.iter().collect();
    let threshold = 2_000;
    assert!(graphs.iter().any(|g| g.num_edges() >= threshold));
    assert!(graphs.iter().any(|g| g.num_edges() < threshold));
    for algorithm in Algorithm::ALL {
        let config = ExtractorConfig::default()
            .with_algorithm(algorithm)
            .with_engine(Engine::rayon(3))
            .with_semantics(Semantics::Synchronous)
            .with_batch_threshold_edges(threshold);
        let batch = ExtractionSession::new(config.clone()).extract_batch(&refs);
        assert_eq!(batch.len(), graphs.len());
        let single_config = config
            .clone()
            .with_partitions(
                config.effective_partitions(),
                maximal_chordal::core::partitioned::PartitionStrategy::Blocks,
            )
            .with_engine(Engine::serial());
        let mut single = ExtractionSession::new(single_config);
        for (i, (graph, from_batch)) in graphs.iter().zip(&batch).enumerate() {
            assert_eq!(
                single.extract(graph).edges(),
                from_batch.edges(),
                "{algorithm} slot {i}"
            );
        }
    }
}

#[test]
fn batch_threshold_extremes_agree_on_random_batches() {
    for seed in 0..6 {
        let mut rng = StdRng::seed_from_u64(0xBA7C02 ^ seed);
        let graphs: Vec<CsrGraph> = (0..5).map(|_| random_graph(&mut rng, 30, 120)).collect();
        let refs: Vec<&CsrGraph> = graphs.iter().collect();
        // Rebalancing off: these are the pure-placement reference oracles,
        // so they must never take the promotion path themselves.
        let base = ExtractorConfig::default()
            .with_engine(Engine::rayon(3))
            .with_semantics(Semantics::Synchronous)
            .with_batch_rebalance(false);
        let fanned = ExtractionSession::new(base.clone().with_batch_threshold_edges(usize::MAX))
            .extract_batch(&refs);
        let intra =
            ExtractionSession::new(base.clone().with_batch_threshold_edges(0)).extract_batch(&refs);
        let hybrid =
            ExtractionSession::new(base.with_batch_threshold_edges(60)).extract_batch(&refs);
        for ((a, b), c) in fanned.iter().zip(&intra).zip(&hybrid) {
            assert_eq!(a.edges(), b.edges(), "seed {seed}");
            assert_eq!(a.edges(), c.edges(), "seed {seed}");
        }
    }
}

#[test]
fn adaptive_batches_agree_with_static_policies_for_every_algorithm() {
    // Mixed sizes so the adaptive pivot genuinely splits the batch on at
    // least some machines; whatever it resolves to, the output must be
    // identical to every static pivot under deterministic (synchronous)
    // semantics.
    let graphs: Vec<CsrGraph> = (0..3)
        .flat_map(|seed| {
            [
                RmatParams::preset(RmatKind::Er, 9, seed).generate(),
                RmatParams::preset(RmatKind::G, 6, seed).generate(),
            ]
        })
        .collect();
    let refs: Vec<&CsrGraph> = graphs.iter().collect();
    for algorithm in Algorithm::ALL {
        let base = ExtractorConfig::default()
            .with_algorithm(algorithm)
            .with_engine(Engine::rayon(3))
            .with_semantics(Semantics::Synchronous)
            .with_partitions(
                3,
                maximal_chordal::core::partitioned::PartitionStrategy::Blocks,
            );
        let mut adaptive_session = ExtractionSession::new(base.clone().with_batch_adaptive(true));
        assert_eq!(
            adaptive_session.effective_batch_threshold(),
            maximal_chordal::core::adaptive_batch_threshold_edges(3),
            "{algorithm}: adaptive sessions must use the calibrated pivot"
        );
        let adaptive = adaptive_session.extract_batch(&refs);
        for pivot in [0, 2_000, usize::MAX] {
            // Promotion-free static references.
            let static_batch = ExtractionSession::new(
                base.clone()
                    .with_batch_threshold_edges(pivot)
                    .with_batch_rebalance(false),
            )
            .extract_batch(&refs);
            for (i, (a, b)) in adaptive.iter().zip(&static_batch).enumerate() {
                assert_eq!(
                    a.edges(),
                    b.edges(),
                    "{algorithm}: adaptive diverged from pivot {pivot} at slot {i}"
                );
            }
        }
    }
}

#[test]
fn ewma_and_rebalancing_batches_stay_byte_identical_across_repeats() {
    // The measured-cost loop moves the pivot between batches and the
    // rebalancer may promote fan-out tail graphs whenever pool workers
    // idle — none of which may ever change extraction output. Run the same
    // mixed batch repeatedly (so the EWMA genuinely feeds back) under both
    // engines and compare every batch, slot for slot, against the pure
    // fan-out placement. CI runs this under CHORDAL_POOL_THREADS={1,2,8}.
    let graphs: Vec<CsrGraph> = (0..3)
        .flat_map(|seed| {
            [
                RmatParams::preset(RmatKind::Er, 9, seed).generate(),
                RmatParams::preset(RmatKind::G, 6, seed).generate(),
            ]
        })
        .collect();
    let refs: Vec<&CsrGraph> = graphs.iter().collect();
    for engine in [Engine::rayon(3), Engine::chunked_with_grain(4, 8)] {
        let base = ExtractorConfig::default()
            .with_engine(engine)
            .with_semantics(Semantics::Synchronous);
        // The reference oracle runs with rebalancing off so it cannot take
        // the promotion path itself.
        let expected = ExtractionSession::new(
            base.clone()
                .with_batch_threshold_edges(usize::MAX)
                .with_batch_rebalance(false),
        )
        .extract_batch(&refs);
        let mut measured = ExtractionSession::new(
            base.clone()
                .with_batch_adaptive(true)
                .with_batch_ewma(true)
                .with_batch_rebalance(true),
        );
        for round in 0..4 {
            let batch = measured.extract_batch(&refs);
            for (i, (a, b)) in batch.iter().zip(&expected).enumerate() {
                assert_eq!(
                    a.edges(),
                    b.edges(),
                    "round {round} slot {i}: measured scheduling changed output"
                );
            }
        }
        let feedback = measured.scheduler_feedback();
        assert!(
            feedback.samples > 0,
            "repeated mixed batches must feed the EWMA"
        );
    }
}

#[test]
fn ewma_pivot_converges_toward_measured_cost() {
    // Seeded synthetic workload: identical scale-10 graphs batch after
    // batch. Whatever this machine's true ns/edge is, the EWMA is a convex
    // combination of the seed and the recorded samples, so after k batches
    // it must lie between the extremes of everything observed — and when
    // the measurements consistently sit on one side of the seed, the pivot
    // must have moved off the seeded value toward them.
    let graphs: Vec<CsrGraph> = (0..3)
        .map(|seed| RmatParams::preset(RmatKind::Er, 10, 0xC0FFEE ^ seed).generate())
        .collect();
    let refs: Vec<&CsrGraph> = graphs.iter().collect();
    let threads = 3;
    let config = ExtractorConfig::default()
        .with_engine(Engine::rayon(threads))
        .with_semantics(Semantics::Synchronous)
        .with_batch_adaptive(true);
    let mut session = ExtractionSession::new(config);
    let seed_ns = session.scheduler_feedback().ewma_ns_per_edge;
    let seeded_pivot = session.effective_batch_threshold();
    assert_eq!(
        seeded_pivot,
        maximal_chordal::core::adaptive_batch_threshold_edges(threads),
        "before any sample the seeded model must be in effect"
    );
    let mut samples = Vec::new();
    for _ in 0..6 {
        session.extract_batch(&refs);
        let feedback = session.scheduler_feedback();
        if feedback.last_ns_per_edge > 0.0 {
            samples.push(feedback.last_ns_per_edge);
        }
    }
    let feedback = session.scheduler_feedback();
    assert!(feedback.samples >= 6, "scale-10 graphs must record samples");
    // The EWMA is a convex combination of the seed and *every* recorded
    // sample; the test only observes the last sample of each batch, so the
    // bound carries a generous noise margin: the state must sit within 4x
    // of the span the observed measurements and the seed cover.
    let lo = samples.iter().copied().fold(seed_ns, f64::min);
    let hi = samples.iter().copied().fold(seed_ns, f64::max);
    assert!(
        (lo / 4.0..=hi * 4.0).contains(&feedback.ewma_ns_per_edge),
        "EWMA {} far outside [{lo}, {hi}], the span of seed and observed samples",
        feedback.ewma_ns_per_edge
    );
    // Convergence direction: when the observed measurements are mutually
    // consistent (within 2x of each other — identical graphs, so the
    // unobserved samples of the same batches behave alike) and sit clearly
    // to one side of the seed, the EWMA must have moved off the seed
    // toward them. After 6 batches the seed's residual weight is
    // (1 - alpha)^samples, far below 1%.
    let consistent = hi <= lo * 2.0;
    if consistent && lo > seed_ns * 2.0 {
        assert!(
            feedback.ewma_ns_per_edge > seed_ns,
            "measured cost above seed must pull the EWMA up"
        );
    } else if consistent && hi < seed_ns / 2.0 {
        assert!(
            feedback.ewma_ns_per_edge < seed_ns,
            "measured cost below seed must pull the EWMA down"
        );
    }
    // The reported pivot is always the model at the current EWMA state.
    assert_eq!(
        session.effective_batch_threshold(),
        maximal_chordal::core::adaptive_batch_threshold_from_model(
            threads,
            feedback.ewma_ns_per_edge,
            feedback.ewma_regions_per_extraction
        )
    );
}

#[test]
fn rebalanced_batches_agree_with_static_policies_for_every_algorithm() {
    // Same lock-down as the adaptive test, with rebalancing and feedback
    // explicitly on and several consecutive batches so promoted placements
    // actually occur on machines where workers idle.
    let graphs: Vec<CsrGraph> = (0..2)
        .flat_map(|seed| {
            [
                RmatParams::preset(RmatKind::Er, 9, seed).generate(),
                RmatParams::preset(RmatKind::G, 6, seed).generate(),
            ]
        })
        .collect();
    let refs: Vec<&CsrGraph> = graphs.iter().collect();
    for algorithm in Algorithm::ALL {
        let base = ExtractorConfig::default()
            .with_algorithm(algorithm)
            .with_engine(Engine::rayon(3))
            .with_semantics(Semantics::Synchronous)
            .with_partitions(
                3,
                maximal_chordal::core::partitioned::PartitionStrategy::Blocks,
            );
        // Promotion-free reference oracle.
        let expected = ExtractionSession::new(
            base.clone()
                .with_batch_threshold_edges(usize::MAX)
                .with_batch_rebalance(false),
        )
        .extract_batch(&refs);
        let mut measured = ExtractionSession::new(
            base.clone()
                .with_batch_adaptive(true)
                .with_batch_ewma(true)
                .with_batch_rebalance(true),
        );
        for round in 0..3 {
            let batch = measured.extract_batch(&refs);
            for (i, (a, b)) in batch.iter().zip(&expected).enumerate() {
                assert_eq!(
                    a.edges(),
                    b.edges(),
                    "{algorithm} round {round} slot {i}: rebalancing changed output"
                );
            }
        }
    }
}

#[test]
fn batch_traffic_grows_the_pool_dispatch_counters() {
    // Scale 11 (2048 vertices): comfortably above the engines' grain, so
    // the intra-graph sweeps split into several chunks and submit real
    // regions instead of running inline.
    let graphs: Vec<CsrGraph> = (0..3)
        .map(|seed| RmatParams::preset(RmatKind::Er, 11, seed).generate())
        .collect();
    let refs: Vec<&CsrGraph> = graphs.iter().collect();
    let mut session = ExtractionSession::new(
        ExtractorConfig::default()
            .with_engine(Engine::rayon(4))
            .with_batch_threshold_edges(0), // intra-graph: every graph submits regions
    );
    let before = rayon::pool_stats();
    session.extract_batch(&refs);
    let after = rayon::pool_stats();
    assert!(
        after.regions > before.regions,
        "intra-graph batch extraction must submit pool regions ({} -> {})",
        before.regions,
        after.regions
    );
    assert!(after.tickets >= before.tickets);
    assert!(after.steals >= before.steals);
}

#[test]
fn sustained_extraction_traffic_never_spawns_threads_after_warmup() {
    // Warm the pool with one parallel extraction...
    let warm_graph = RmatParams::preset(RmatKind::G, 8, 1).generate();
    let mut session =
        ExtractionSession::new(ExtractorConfig::default().with_engine(Engine::rayon(4)));
    session.extract(&warm_graph);
    let spawned = rayon::pool_spawned_threads();
    assert_eq!(
        spawned,
        rayon::pool_size(),
        "warm-up must have spawned exactly the configured pool"
    );
    // ...then drive sustained single-graph and batch traffic over both
    // parallel engines and assert the pool never grows: parallel regions
    // reuse the persistent workers instead of spawning.
    let graphs: Vec<CsrGraph> = (0..6)
        .map(|seed| RmatParams::preset(RmatKind::Er, 7, seed).generate())
        .collect();
    let refs: Vec<&CsrGraph> = graphs.iter().collect();
    for engine in [Engine::rayon(4), Engine::chunked(4)] {
        let mut session = ExtractionSession::new(
            ExtractorConfig::default()
                .with_engine(engine)
                .with_batch_threshold_edges(1_000),
        );
        for _ in 0..8 {
            session.extract(&warm_graph);
            session.extract_batch(&refs);
        }
    }
    assert_eq!(
        rayon::pool_spawned_threads(),
        spawned,
        "extraction traffic after warm-up must not spawn any thread"
    );
}
