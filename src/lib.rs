//! # maximal-chordal
//!
//! A multithreaded toolkit for extracting **maximal chordal subgraphs** from
//! large sparse graphs — a Rust reproduction of *"A Novel Multithreaded
//! Algorithm for Extracting Maximal Chordal Subgraphs"* (Halappanavar, Feo,
//! Dempsey, Ali, Bhowmick; ICPP 2012).
//!
//! This facade crate re-exports the workspace crates so applications can
//! depend on a single package:
//!
//! * [`graph`] — CSR graph substrate (construction, traversal, statistics).
//! * [`generators`] — R-MAT, Erdős–Rényi, structured graphs and synthetic
//!   gene-correlation networks.
//! * [`runtime`] — execution engines (serial, dynamic self-scheduling pool,
//!   rayon).
//! * [`core`] — the extraction algorithms behind the
//!   [`ChordalExtractor`]/[`Algorithm`] registry (the paper's Algorithm 1,
//!   the sequential reference, the Dearing serial baseline, the partitioned
//!   baseline), the reusable [`ExtractionSession`] API, verification and
//!   component stitching.
//! * [`analysis`] — clustering coefficients, shortest-path distributions,
//!   assortativity and chordal-fraction reporting.
//! * [`serve`] — the resident extraction service behind `chordal serve`:
//!   TCP protocol, content-hash graph cache, admission control.
//!
//! ## Quick start
//!
//! One-off extraction:
//!
//! ```
//! use maximal_chordal::prelude::*;
//!
//! // Generate a small scale-free graph (R-MAT "B" preset, 2^9 vertices).
//! let graph = RmatParams::preset(RmatKind::B, 9, 42).generate();
//!
//! // Extract a maximal chordal subgraph with the default configuration
//! // (rayon engine over all cores, sorted adjacency, asynchronous
//! // semantics — the paper-faithful setup).
//! let result = extract_maximal_chordal(&graph);
//!
//! // The extracted edge set always induces a chordal subgraph.
//! assert!(is_chordal(&result.subgraph(&graph)));
//! assert!(result.num_chordal_edges() <= graph.num_edges());
//! ```
//!
//! ## Serving repeated traffic
//!
//! An [`ExtractionSession`] owns a reusable [`core::Workspace`], so back-to-
//! back extractions stop paying per-run allocation — and
//! [`ExtractionSession::extract_batch`] fans a whole slice of graphs out
//! across the configured engine:
//!
//! ```
//! use maximal_chordal::prelude::*;
//!
//! let graphs: Vec<_> = (0..4)
//!     .map(|seed| RmatParams::preset(RmatKind::G, 7, seed).generate())
//!     .collect();
//!
//! let mut session = ExtractionSession::new(ExtractorConfig::serial(AdjacencyMode::Sorted));
//! let first = session.extract(&graphs[0]);
//! let allocations = session.workspace().allocations();
//! let again = session.extract(&graphs[0]);
//! assert_eq!(first.edges(), again.edges());
//! assert_eq!(session.workspace().allocations(), allocations); // buffers reused
//!
//! let refs: Vec<&_> = graphs.iter().collect();
//! let results = session.extract_batch(&refs);
//! assert_eq!(results.len(), graphs.len());
//! ```
//!
//! ## Batch scheduling
//!
//! On a parallel engine, `extract_batch` schedules **hybridly**, pivoting
//! on [`ExtractorConfig::batch_threshold_edges`]: graphs below the
//! threshold are fanned out across the engine's workers (one serial
//! extraction per graph, worker-local workspaces), graphs at or above it
//! run one at a time with intra-graph parallelism — the paper's Algorithm 1
//! scaling regime. `usize::MAX` forces pure fan-out, `0` pure intra-graph
//! scheduling. Every parallel region executes on the process-wide
//! persistent worker pool (sized by `CHORDAL_POOL_THREADS`, default all
//! logical CPUs), so neither policy spawns threads per batch:
//!
//! ```
//! use maximal_chordal::prelude::*;
//!
//! let graphs: Vec<_> = (0..6)
//!     .map(|seed| RmatParams::preset(RmatKind::G, 7, seed).generate())
//!     .collect();
//! let refs: Vec<&_> = graphs.iter().collect();
//!
//! // Mixed serving traffic: fan small graphs out, run graphs with at
//! // least 2_000 edges with intra-graph parallelism.
//! let config = ExtractorConfig::default()
//!     .with_engine(Engine::rayon(4))
//!     .with_batch_threshold_edges(2_000);
//! let results = ExtractionSession::new(config).extract_batch(&refs);
//! assert_eq!(results.len(), graphs.len());
//! ```
//!
//! ## The algorithm registry
//!
//! Every algorithm is reachable through [`Algorithm`] and one
//! [`ExtractorConfig`] — the CLI, benches and experiments all dispatch this
//! way:
//!
//! ```
//! use maximal_chordal::prelude::*;
//!
//! let graph = graph_from_edges(4, vec![(0, 1), (1, 2), (2, 3), (0, 3)]);
//! for algorithm in Algorithm::ALL {
//!     let config = ExtractorConfig::serial(AdjacencyMode::Sorted).with_algorithm(algorithm);
//!     let result = config.build_extractor().extract(&graph);
//!     assert_eq!(result.num_vertices(), 4, "{algorithm}");
//! }
//! ```

#![deny(missing_docs)]

pub use chordal_analysis as analysis;
pub use chordal_core as core;
pub use chordal_generators as generators;
pub use chordal_graph as graph;
pub use chordal_runtime as runtime;
pub use chordal_serve as serve;

pub use chordal_core::{
    extract_maximal_chordal, extract_maximal_chordal_serial, AdjacencyMode, Algorithm,
    ChordalExtractor, ChordalResult, ExtractError, ExtractionSession, ExtractorConfig,
    MaximalChordalExtractor, Semantics,
};

/// The most commonly used items across the workspace, re-exported for
/// applications and examples.
pub mod prelude {
    pub use chordal_analysis::chordal_fraction::chordal_edge_percentage;
    pub use chordal_analysis::clustering::average_clustering;
    pub use chordal_analysis::degree_assortativity;
    pub use chordal_core::connect::{stitch_components, stitched_edge_set};
    pub use chordal_core::dearing::extract_dearing;
    pub use chordal_core::verify::{check_maximality, is_chordal};
    pub use chordal_core::{
        extract_maximal_chordal, extract_maximal_chordal_serial, AdjacencyMode, Algorithm,
        ChordalExtractor, ChordalResult, ExtractError, ExtractionSession, ExtractorConfig,
        MaximalChordalExtractor, Semantics,
    };
    pub use chordal_generators::bio::{CorrelationNetworkParams, GeneNetworkKind};
    pub use chordal_generators::rmat::{RmatKind, RmatParams};
    pub use chordal_graph::builder::graph_from_edges;
    pub use chordal_graph::{CsrGraph, EdgeList, GraphBuilder, GraphStats};
    pub use chordal_runtime::Engine;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_compose() {
        let graph = graph_from_edges(4, vec![(0, 1), (1, 2), (2, 3), (0, 3)]);
        let result = extract_maximal_chordal_serial(&graph);
        assert_eq!(result.num_chordal_edges(), 3);
        assert!(is_chordal(&result.subgraph(&graph)));
        let stats = GraphStats::compute(&graph);
        assert_eq!(stats.edges, 4);
    }

    #[test]
    fn facade_exposes_the_session_api() {
        let graph = graph_from_edges(5, vec![(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)]);
        let mut session = ExtractionSession::new(ExtractorConfig::serial(AdjacencyMode::Sorted));
        let a = session.extract(&graph);
        let b = session.extract(&graph);
        assert_eq!(a.edges(), b.edges());
        assert_eq!(session.algorithm(), Algorithm::Parallel);
    }
}
