//! Strong-scaling study on one R-MAT graph: the Figure-4 experiment in
//! miniature, runnable in a few seconds.
//!
//! Run with `cargo run --release --example scaling_study -- [scale]`
//! (default scale 13, i.e. 8,192 vertices and ~65k edges).

use maximal_chordal::prelude::*;
use std::time::Instant;

fn main() {
    let scale: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(13);
    let max_threads = maximal_chordal::runtime::available_threads();

    println!("generating RMAT-B at scale {scale} (edge factor 8)...");
    let graph = RmatParams::preset(RmatKind::B, scale, 1).generate();
    println!(
        "graph: {} vertices, {} edges, max degree {}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.max_degree()
    );

    println!(
        "\n{:<8} {:>10} {:>12} {:>12} {:>10}",
        "threads", "engine", "seconds", "EC edges", "speedup"
    );

    for engine_name in ["pool", "rayon"] {
        let mut baseline = None;
        let mut threads = 1usize;
        while threads <= max_threads {
            let engine = Engine::by_name(engine_name, threads).expect("registered engine name");
            let config = ExtractorConfig::default().with_engine(engine);
            // One session per point: the repeat runs reuse its workspace, so
            // best-of-three measures the allocation-amortised steady state.
            let mut session = ExtractionSession::new(config);
            let mut best = f64::INFINITY;
            let mut edges = 0;
            for _ in 0..3 {
                let start = Instant::now();
                let result = session.extract(&graph);
                best = best.min(start.elapsed().as_secs_f64());
                edges = result.num_chordal_edges();
            }
            let baseline_time = *baseline.get_or_insert(best);
            println!(
                "{threads:<8} {engine_name:>10} {best:>12.4} {edges:>12} {:>10.2}",
                baseline_time / best
            );
            if threads == max_threads {
                break;
            }
            threads = (threads * 2).min(max_threads);
        }
        println!();
    }

    println!("(the same sweep at paper scale is `cargo run -p chordal-bench --release --bin experiments -- figure4`)");
}
