//! Quick start: build a graph, extract a maximal chordal subgraph, verify
//! the result, and stitch its components together.
//!
//! Run with `cargo run --release --example quickstart`.

use maximal_chordal::prelude::*;

fn main() {
    // A small hand-built graph: two squares sharing a corner, plus chords.
    //
    //   0 - 1        4 - 5
    //   |   |  \   / |   |
    //   3 - 2 -- 6 - 7 - 8
    //
    let graph = graph_from_edges(
        9,
        vec![
            (0, 1),
            (1, 2),
            (2, 3),
            (0, 3),
            (0, 2), // chord of the first square
            (2, 6),
            (1, 6),
            (4, 5),
            (4, 6),
            (5, 7),
            (4, 7),
            (6, 7),
            (7, 8),
            (5, 8),
        ],
    );
    println!(
        "input graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // Extract with the default (parallel, paper-faithful) configuration.
    // A session owns reusable scratch buffers, so follow-up extractions on
    // same-sized graphs are allocation-free.
    let mut session = ExtractionSession::new(ExtractorConfig::default());
    let result = session.extract(&graph);
    println!(
        "maximal chordal subgraph: {} edges ({:.1}% of the input) in {} iterations",
        result.num_chordal_edges(),
        chordal_edge_percentage(&graph, &result),
        result.iterations
    );

    // The result always induces a chordal graph.
    let subgraph = result.subgraph(&graph);
    assert!(is_chordal(&subgraph));
    println!("chordality verified with the MCS / perfect-elimination-ordering check");

    // List the edges that were dropped.
    let dropped: Vec<_> = graph
        .edges()
        .filter(|&(u, v)| !result.contains_edge(u, v))
        .collect();
    println!("dropped edges: {dropped:?}");

    // If the chordal subgraph ended up with several components, connect them
    // with original-graph edges without breaking chordality.
    let stitch = stitch_components(&graph, result.edges());
    println!(
        "components before/after stitching: {} -> {} (added {:?})",
        stitch.components_before, stitch.components_after, stitch.added_edges
    );
    let stitched = stitched_edge_set(&graph, result.edges());
    assert!(is_chordal(
        &maximal_chordal::graph::subgraph::edge_subgraph(&graph, &stitched)
    ));

    // Compare against the serial Dearing baseline, dispatched through the
    // same registry as every other algorithm.
    let dearing = ExtractionSession::with_algorithm(Algorithm::Dearing).extract(&graph);
    println!(
        "Dearing baseline retains {} edges (Algorithm 1 retained {})",
        dearing.num_chordal_edges(),
        result.num_chordal_edges()
    );

    // Re-running through the session reuses its workspace: the allocation
    // counter stays flat. (The default asynchronous parallel semantics may
    // legally retain a slightly different edge set between runs, so only
    // the invariants are asserted, not bit-equality.)
    let allocations = session.workspace().allocations();
    let rerun = session.extract(&graph);
    assert!(is_chordal(&rerun.subgraph(&graph)));
    assert_eq!(session.workspace().allocations(), allocations);
    println!("second session run reused all {allocations} workspace allocations");
}
