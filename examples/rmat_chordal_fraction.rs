//! How much of an R-MAT graph is chordal? Reproduces the Section-V
//! observation that only a small, roughly scale-independent fraction of each
//! synthetic graph survives into the maximal chordal subgraph (~11% for
//! RMAT-ER, ~10% for RMAT-G, ~6% for RMAT-B at the paper's scales).
//!
//! Run with `cargo run --release --example rmat_chordal_fraction -- [base_scale]`.

use maximal_chordal::prelude::*;

fn main() {
    let base_scale: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(11);

    println!(
        "{:<12} {:>6} {:>10} {:>12} {:>12} {:>10} {:>10}",
        "preset", "scale", "vertices", "edges", "EC edges", "alg1 %", "dearing %"
    );
    // Sessions are reused across the whole sweep: each algorithm pays its
    // workspace allocations once, at the largest graph size seen so far.
    let mut alg1_session = ExtractionSession::new(ExtractorConfig::default());
    let mut dearing_session = ExtractionSession::with_algorithm(Algorithm::Dearing);
    for kind in [RmatKind::Er, RmatKind::G, RmatKind::B] {
        for scale in [base_scale, base_scale + 1] {
            let graph = RmatParams::preset(kind, scale, 3).generate();
            let alg1 = alg1_session.extract(&graph);
            let dearing = dearing_session.extract(&graph);
            assert!(is_chordal(&alg1.subgraph(&graph)));
            println!(
                "{:<12} {:>6} {:>10} {:>12} {:>12} {:>10.2} {:>10.2}",
                kind.name(),
                scale,
                graph.num_vertices(),
                graph.num_edges(),
                alg1.num_chordal_edges(),
                chordal_edge_percentage(&graph, &alg1),
                chordal_edge_percentage(&graph, &dearing),
            );
        }
    }
    println!(
        "\nThe retained fraction is small and stays roughly constant from one scale to the\n\
         next, as the paper reports. (At the paper's scales — 2^24 vertices and above — the\n\
         skewed RMAT-B preset retains the smallest share; at laptop scales its dense local\n\
         communities are proportionally larger, so its fraction is higher.)"
    );
}
