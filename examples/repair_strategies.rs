//! Timing harness for the maximality-repair strategies.
//!
//! Run with `cargo run --release --example repair_strategies`. The harness
//! extracts with `alg1` (serial, deterministic) on graphs of growing size
//! and then repairs the result under both [`RepairStrategy`] values,
//! printing the repair-only wall time side by side. The scratch baseline
//! re-verifies chordality from scratch per candidate and is only run while
//! it stays tractable; the incremental strategy (maintained chordal
//! subgraph + separator test) keeps going to benchmark scale, which is the
//! point of the strategy — `alg1 + repair` stops being test-scale only.
//!
//! The two strategies always produce identical repaired edge sets; the
//! harness asserts that on every graph where both run.

use maximal_chordal::core::repair::repair_maximality_with;
use maximal_chordal::core::{RepairStrategy, Workspace};
use maximal_chordal::prelude::*;
use std::time::Instant;

/// Scratch repair is quadratic; do not run it above this many host edges.
const SCRATCH_MAX_EDGES: usize = 20_000;

fn main() {
    println!("repair strategies: incremental vs scratch (alg1 base, serial)");
    println!(
        "{:<14} {:>9} {:>9} {:>7} {:>16} {:>14}",
        "graph", "edges", "base", "added", "incremental(s)", "scratch(s)"
    );
    let mut session = ExtractionSession::new(ExtractorConfig::serial(AdjacencyMode::Sorted));
    let mut workspace = Workspace::new();
    for scale in [8u32, 10, 12, 14] {
        let graph = RmatParams::preset(RmatKind::G, scale, 7).generate();
        let base = session.extract(&graph);
        let start = Instant::now();
        let incremental = repair_maximality_with(
            &graph,
            base.edges(),
            None,
            RepairStrategy::Incremental,
            &mut workspace,
        );
        let incremental_seconds = start.elapsed().as_secs_f64();
        let scratch_seconds = if graph.num_edges() <= SCRATCH_MAX_EDGES {
            let start = Instant::now();
            let scratch = repair_maximality_with(
                &graph,
                base.edges(),
                None,
                RepairStrategy::Scratch,
                &mut workspace,
            );
            assert_eq!(
                incremental.edges, scratch.edges,
                "strategies must repair to identical edge sets"
            );
            format!("{:>14.4}", start.elapsed().as_secs_f64())
        } else {
            format!("{:>14}", "(skipped)")
        };
        println!(
            "{:<14} {:>9} {:>9} {:>7} {:>16.4} {}",
            format!("RMAT-G({scale})"),
            graph.num_edges(),
            base.num_chordal_edges(),
            incremental.added.len(),
            incremental_seconds,
            scratch_seconds
        );
    }
    println!("(scratch is skipped above {SCRATCH_MAX_EDGES} host edges — quadratic)");
}
