//! Per-region dispatch overhead microbenchmark.
//!
//! Run with `cargo run --release --example pool_overhead`. Times how long
//! it takes to dispatch and join one nearly-empty parallel region —
//! ticket publication, worker wake-up, cursor handshake, join — on:
//!
//! * the workspace's **lock-free pool** (Chase–Lev deques + bounded MPMC
//!   injector, atomic `pending`/`active` region accounting, park/unpark
//!   joins), and
//! * a **mutex-queue reference dispatcher** replicating the previous
//!   design: per-worker `Mutex<Vec<_>>` ticket queues behind one dispatch
//!   lock, condvar wake-ups, and a mutex-guarded quiescence count per
//!   region.
//!
//! The reference spawns its own small thread set (it exists only for this
//! comparison); the lock-free numbers come from the shared persistent
//! pool, and its calibrated overhead sample
//! (`runtime::estimated_region_overhead_ns`) is printed alongside so the
//! adaptive batch policy's input can be eyeballed against the raw
//! measurement.

use maximal_chordal::runtime;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// One region of the mutex-queue reference: an atomic cursor plus
/// lock-guarded participation/ticket accounting (the PR 2 design).
struct MxRegion {
    cursor: AtomicUsize,
    len: usize,
    grain: usize,
    /// `(active participants, unclaimed tickets)`.
    sync: Mutex<(usize, usize)>,
    quiescent: Condvar,
    /// Sink the chunks write to, standing in for a real body.
    sink: AtomicUsize,
}

impl MxRegion {
    fn participate(&self) {
        self.sync.lock().unwrap().0 += 1;
        loop {
            let start = self.cursor.fetch_add(self.grain, Ordering::Relaxed);
            if start >= self.len {
                break;
            }
            let end = (start + self.grain).min(self.len);
            self.sink.fetch_add(end - start, Ordering::Relaxed);
        }
        let mut sync = self.sync.lock().unwrap();
        sync.0 -= 1;
        if sync.0 == 0 && sync.1 == 0 {
            self.quiescent.notify_all();
        }
    }

    fn retire_ticket(&self) {
        let mut sync = self.sync.lock().unwrap();
        sync.1 -= 1;
        if sync.0 == 0 && sync.1 == 0 {
            self.quiescent.notify_all();
        }
    }
}

/// Ticket queues + pending count under one dispatch lock (PR 2's
/// `Dispatch`), plus the worker set that drains them.
struct MxPool {
    dispatch: Mutex<(Vec<Vec<Arc<MxRegion>>>, usize)>,
    available: Condvar,
    next_queue: AtomicUsize,
    stop: AtomicBool,
}

impl MxPool {
    fn start(workers: usize) -> (Arc<Self>, Vec<std::thread::JoinHandle<()>>) {
        let pool = Arc::new(Self {
            dispatch: Mutex::new(((0..workers).map(|_| Vec::new()).collect(), 0)),
            available: Condvar::new(),
            next_queue: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|home| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || pool.worker_loop(home))
            })
            .collect();
        (pool, handles)
    }

    fn take(&self, home: usize) -> Option<Arc<MxRegion>> {
        let mut dispatch = self.dispatch.lock().unwrap();
        let n = dispatch.0.len();
        for k in 0..n {
            let q = (home + k) % n;
            if let Some(ticket) = dispatch.0[q].pop() {
                dispatch.1 -= 1;
                return Some(ticket);
            }
        }
        None
    }

    fn worker_loop(&self, home: usize) {
        loop {
            if let Some(region) = self.take(home) {
                region.participate();
                region.retire_ticket();
                continue;
            }
            let mut dispatch = self.dispatch.lock().unwrap();
            while dispatch.1 == 0 {
                if self.stop.load(Ordering::Relaxed) {
                    return;
                }
                let (guard, _) = self
                    .available
                    .wait_timeout(dispatch, std::time::Duration::from_millis(10))
                    .unwrap();
                dispatch = guard;
            }
        }
    }

    fn run_region(&self, len: usize, grain: usize, participants: usize) {
        let region = Arc::new(MxRegion {
            cursor: AtomicUsize::new(0),
            len,
            grain,
            sync: Mutex::new((0, participants - 1)),
            quiescent: Condvar::new(),
            sink: AtomicUsize::new(0),
        });
        for _ in 0..participants - 1 {
            let mut dispatch = self.dispatch.lock().unwrap();
            let q = self.next_queue.fetch_add(1, Ordering::Relaxed) % dispatch.0.len();
            dispatch.0[q].push(Arc::clone(&region));
            dispatch.1 += 1;
            drop(dispatch);
            self.available.notify_one();
        }
        region.participate();
        // Retire our region's still-queued tickets, as PR 2's joiner did.
        loop {
            let ticket = {
                let mut dispatch = self.dispatch.lock().unwrap();
                let mut found = None;
                for q in 0..dispatch.0.len() {
                    if let Some(pos) = dispatch.0[q].iter().position(|t| Arc::ptr_eq(t, &region)) {
                        found = Some(dispatch.0[q].swap_remove(pos));
                        dispatch.1 -= 1;
                        break;
                    }
                }
                found
            };
            match ticket {
                Some(ticket) => {
                    ticket.participate();
                    ticket.retire_ticket();
                }
                None => break,
            }
        }
        let sync = region.sync.lock().unwrap();
        let _unused = region
            .quiescent
            .wait_while(sync, |s| s.0 > 0 || s.1 > 0)
            .unwrap();
    }

    fn shutdown(&self) {
        self.stop.store(true, Ordering::Relaxed);
        self.available.notify_all();
    }
}

/// Times `rounds` dispatches of a nearly-empty region and returns ns/region.
fn time_regions<F: FnMut()>(rounds: u32, mut dispatch_one: F) -> f64 {
    // Warm up outside the timed window.
    for _ in 0..64 {
        dispatch_one();
    }
    let start = Instant::now();
    for _ in 0..rounds {
        dispatch_one();
    }
    start.elapsed().as_nanos() as f64 / f64::from(rounds)
}

fn main() {
    let rounds = 2_000u32;
    // Two chunks + parallelism 2: one ticket published per region, the
    // minimal real dispatch (inline fast paths would measure nothing).
    let (len, grain, parallelism) = (2usize, 1usize, 2usize);

    println!("per-region dispatch overhead, {rounds} rounds of a {len}-chunk region:");

    let lock_free_ns = time_regions(rounds, || {
        rayon::run_pooled_region(len, grain, parallelism, |r: Range<usize>| {
            std::hint::black_box(r.len());
        });
    });
    println!("  lock-free pool (Chase-Lev + injector):  {lock_free_ns:>10.0} ns/region");

    let stats_before = runtime::pool_stats();
    let (mx_pool, handles) = MxPool::start(2);
    let mutex_ns = time_regions(rounds, || {
        mx_pool.run_region(len, grain, parallelism);
    });
    mx_pool.shutdown();
    for handle in handles {
        let _unused = handle.join();
    }
    println!("  mutex-queue reference (PR 2 design):    {mutex_ns:>10.0} ns/region");
    println!(
        "  ratio: lock-free is {:.2}x the mutex-queue cost (lower is better)",
        lock_free_ns / mutex_ns
    );
    println!(
        "\ncalibrated overhead sample (adaptive-policy input): {} ns",
        runtime::estimated_region_overhead_ns()
    );
    let stats = runtime::pool_stats();
    println!(
        "pool counters since start: {} regions, {} tickets, {} steals (+{} regions during this run)",
        stats.regions,
        stats.tickets,
        stats.steals,
        stats.regions - stats_before.regions
    );
}
