//! Gene-correlation network sampling — the application that motivates the
//! paper's biological experiments.
//!
//! A synthetic microarray expression matrix is generated, turned into a
//! correlation network by thresholding Pearson correlations at 0.95 (exactly
//! the paper's pipeline for GSE5140/GSE17072), and then *sampled* by
//! extracting a maximal chordal subgraph. The example reports how much of
//! the network's structure (clustering, assortativity, component count) the
//! chordal sample preserves.
//!
//! Run with `cargo run --release --example gene_network_sampling`.

use maximal_chordal::graph::traversal::connected_components;
use maximal_chordal::prelude::*;

fn describe(label: &str, graph: &CsrGraph) {
    let stats = GraphStats::compute(graph);
    println!(
        "{label:<22} V={:<6} E={:<7} avg deg={:<6.2} max deg={:<5} clustering={:.4} assortativity={:+.3} components={}",
        stats.vertices,
        stats.edges,
        stats.avg_degree,
        stats.max_degree,
        average_clustering(graph),
        degree_assortativity(graph),
        connected_components(graph).count,
    );
}

fn main() {
    // Build the untreated-mice network analogue at a laptop-friendly size.
    let genes = 1_500;
    println!("synthesising expression data and thresholding correlations (|rho| >= 0.95)...");
    let network = GeneNetworkKind::Gse5140Unt.network(genes, 7);
    describe("correlation network", &network);

    // Extract the maximal chordal subgraph — the paper's sampling operator.
    let config = ExtractorConfig::default().with_stats(true);
    let result = ExtractionSession::new(config).extract(&network);
    println!(
        "\nchordal sample: {} of {} edges ({:.1}%), {} iterations",
        result.num_chordal_edges(),
        network.num_edges(),
        chordal_edge_percentage(&network, &result),
        result.iterations
    );
    if let Some(stats) = &result.stats {
        println!("queue sizes per iteration: {:?}", stats.queue_sizes);
    }

    let sample = result.subgraph(&network);
    assert!(is_chordal(&sample));
    describe("chordal sample", &sample);

    // Compare with the serial Dearing baseline (same sampling idea, no
    // parallelism), built through the same registry.
    let dearing = ExtractionSession::with_algorithm(Algorithm::Dearing).extract(&network);
    let dearing_graph = dearing.subgraph(&network);
    describe("dearing sample", &dearing_graph);

    println!(
        "\nthe chordal sample keeps the module structure (high clustering at low degree)\n\
         while discarding most long-range edges — the paper's noise-reducing sampling idea."
    );
}
