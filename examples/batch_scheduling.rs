//! Timing harness for `ExtractionSession::extract_batch` on a mixed batch
//! of small and large graphs — the serving-path workload the hybrid batch
//! scheduler targets.
//!
//! Run with `cargo run --release --example batch_scheduling`. The harness
//! builds a batch of many small graphs plus a few large ones, then times
//! `extract_batch` under the configured engine. It reports wall time per
//! policy so the scoped-spawn baseline, the persistent pool, and the hybrid
//! threshold policy can be compared across commits.
//!
//! Besides the static pivots (pure fan-out, a fixed hybrid threshold, pure
//! intra-graph), the sweep includes two **adaptive** rows: `adapt-frozen`
//! is the seeded cost model alone (per-thread pool calibration, no
//! feedback, no rebalancing — the PR 3 policy), and `adaptive` is the full
//! measured loop (per-session EWMA feedback of observed ns/edge and
//! regions per extraction, plus intra-batch rebalancing of the fan-out
//! tail onto idle workers). The printout shows what each chose on this
//! machine next to the hand-picked thresholds they compete with, and the
//! session's feedback state after the timed repeats. For the raw
//! dispatch-overhead numbers the model consumes, see
//! `examples/pool_overhead.rs`.

use maximal_chordal::prelude::*;
use std::time::Instant;

fn mixed_batch() -> Vec<CsrGraph> {
    let mut graphs = Vec::new();
    // Many small requests...
    for seed in 0..48 {
        graphs.push(RmatParams::preset(RmatKind::G, 7, seed).generate());
    }
    // ...plus a few large ones, interleaved the way real traffic arrives.
    for seed in 0..3 {
        graphs.insert(
            (seed as usize) * 16,
            RmatParams::preset(RmatKind::B, 12, 100 + seed).generate(),
        );
    }
    graphs
}

fn time_batch(label: &str, config: ExtractorConfig, refs: &[&CsrGraph]) {
    let adaptive = config.batch_adaptive;
    let mut session = ExtractionSession::new(config);
    // Warm-up: grows workspaces and (on pooled builds) spawns the workers.
    let warm = session.extract_batch(refs);
    let edges: usize = warm.iter().map(|r| r.num_chordal_edges()).sum();
    let repeats = 5;
    let mut best = f64::MAX;
    let mut total = 0.0;
    for _ in 0..repeats {
        let start = Instant::now();
        let results = session.extract_batch(refs);
        let elapsed = start.elapsed().as_secs_f64();
        assert_eq!(results.len(), refs.len());
        best = best.min(elapsed);
        total += elapsed;
    }
    let feedback = session.scheduler_feedback();
    let scheduler = if adaptive {
        format!(
            "  [ewma {:.1} ns/edge, {} promoted]",
            feedback.ewma_ns_per_edge, feedback.rebalanced
        )
    } else {
        String::new()
    };
    println!(
        "{label:<28} best {best:>8.4}s  mean {:>8.4}s  ({edges} chordal edges){scheduler}",
        total / repeats as f64
    );
}

fn time_single(label: &str, config: ExtractorConfig, graph: &CsrGraph) {
    let mut session = ExtractionSession::new(config);
    let warm = session.extract(graph);
    let repeats = 20;
    let mut best = f64::MAX;
    let mut total = 0.0;
    for _ in 0..repeats {
        let start = Instant::now();
        let result = session.extract(graph);
        let elapsed = start.elapsed().as_secs_f64();
        assert_eq!(result.num_vertices(), warm.num_vertices());
        best = best.min(elapsed);
        total += elapsed;
    }
    println!(
        "{label:<28} best {best:>8.4}s  mean {:>8.4}s",
        total / repeats as f64
    );
}

fn main() {
    let graphs = mixed_batch();
    let refs: Vec<&CsrGraph> = graphs.iter().collect();
    let small = graphs.iter().filter(|g| g.num_edges() < 10_000).count();
    println!(
        "mixed batch: {} graphs ({} small, {} large), {} total edges",
        graphs.len(),
        small,
        graphs.len() - small,
        graphs.iter().map(|g| g.num_edges()).sum::<usize>()
    );

    for threads in [2, 4] {
        for (policy, threshold, measured) in [
            ("fan-out", Some(usize::MAX), false),
            ("hybrid(10k)", Some(10_000), false),
            ("intra", Some(0), false),
            // The PR 3 comparator: seeded cost model, no feedback, no
            // rebalancing...
            ("adapt-frozen", None, false),
            // ...versus the full measured loop.
            ("adaptive", None, true),
        ] {
            let configure = |config: ExtractorConfig| {
                let config = config
                    .with_batch_ewma(measured)
                    .with_batch_rebalance(measured);
                match threshold {
                    Some(threshold) => config.with_batch_threshold_edges(threshold),
                    None => config.with_batch_adaptive(true),
                }
            };
            time_batch(
                &format!("rayon x{threads} {policy}"),
                configure(ExtractorConfig::default().with_engine(Engine::rayon(threads))),
                &refs,
            );
            time_batch(
                &format!("pool x{threads} {policy}"),
                configure(ExtractorConfig::default().with_engine(Engine::chunked(threads))),
                &refs,
            );
        }
    }
    println!(
        "seeded adaptive pivot resolved to {} edges on this machine (4-thread region overhead sample {} ns)",
        maximal_chordal::core::adaptive_batch_threshold_edges(4),
        maximal_chordal::runtime::estimated_region_overhead_ns_for(4)
    );
    time_batch(
        "serial",
        ExtractorConfig::serial(AdjacencyMode::Sorted),
        &refs,
    );

    // Intra-graph parallelism on one large graph: the region-heavy path
    // where per-region thread spawning hurts most.
    let large = RmatParams::preset(RmatKind::B, 13, 7).generate();
    println!(
        "\nsingle large graph: {} vertices, {} edges",
        large.num_vertices(),
        large.num_edges()
    );
    for threads in [2, 4, 8] {
        time_single(
            &format!("single rayon x{threads}"),
            ExtractorConfig::default().with_engine(Engine::rayon(threads)),
            &large,
        );
        time_single(
            &format!("single pool x{threads}"),
            ExtractorConfig::default().with_engine(Engine::chunked(threads)),
            &large,
        );
    }
    time_single(
        "single serial",
        ExtractorConfig::serial(AdjacencyMode::Sorted),
        &large,
    );
}
